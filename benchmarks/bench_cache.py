"""Cross-layer cache sweep: dup_frac x cache size -> hit rate / speedup.

Duplicate-heavy traffic is where serving caches earn their keep: the
sweep drives a seeded duplicate stream (the shared
:mod:`repro.core.duplication` plan, ``jitter=0`` so replays are
byte-identical) through a real gateway + backend pair, once with the
caches off (baseline) and once per (dup_frac, cache size) cell with the
gateway's content-addressed response cache and the backend's lossless
engine layer cache armed.  Each cell records:

* **hit rate** — response-cache hits over the stream (with a budget big
  enough for the working set, hits must equal the plan's duplicate count
  exactly: the stream is sequential, so every source precedes its
  replays);
* **hit-path speedup** — median miss latency / median hit latency, the
  per-request cost a memo actually removes (backend hop + forward);
* **fidelity** — every cached answer must be byte-identical to what the
  cache-off baseline served for the same request, and the backend layer
  cache must report exact fidelity (``tolerance=0``).

Results go to ``benchmarks/results/BENCH_cache.json``.  ``--check``
turns the run into a CI gate:

* cache-off and cache-on answers must be byte-identical on every request
  (always enforced — identity does not need cores);
* with a working-set-sized budget, hits must equal the duplicate plan
  exactly, and evictions must stay zero (also always enforced);
* the hit path must be >= 2x faster than the miss path at dup_frac=0.5
  — enforced only on hosts with >= GATE_MIN_CORES cores
  (``gate_enforced`` records the honest decision either way).

Usage::

    python benchmarks/bench_cache.py                      # full sweep
    python benchmarks/bench_cache.py --requests 80 --check  # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from _common import gate_fields  # noqa: E402
from repro.core import BatchPolicy, DjinnClient, DjinnServer, ModelRegistry  # noqa: E402
from repro.core.duplication import plan_duplicates  # noqa: E402
from repro.gateway import GatewayServer  # noqa: E402
from repro.models import build_net  # noqa: E402
from repro.nn import LayerCacheConfig  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

MODEL = "dig"
SEED = 0xD1A77

#: hit path must beat the miss path by this factor at dup_frac=0.5
HIT_SPEEDUP_GATE = 2.0


def _inputs(net, requests: int, dup_frac: float):
    """The seeded duplicate stream: (inputs, dup_of plan)."""
    dup_of = plan_duplicates(requests, dup_frac, SEED)
    shape = (1,) + tuple(net.input_shape)
    inputs = []
    for i in range(requests):
        src = i
        while src in dup_of:  # dup-of-dup chains resolve to the original
            src = dup_of[src]
        x = np.full(shape, 0.25, dtype=np.float32)
        x.reshape(-1)[0] = float(src + 1)  # jitter=0: replay exact bytes
        inputs.append(x)
    return inputs, dup_of


def _drive(address, inputs):
    """Sequential stream through one connection; per-request latencies
    and the raw response bytes (the identity evidence)."""
    latencies, payloads = [], []
    with DjinnClient(*address, timeout_s=60.0) as client:
        for x in inputs:
            t0 = time.perf_counter()
            out = client.infer(MODEL, x)
            latencies.append(time.perf_counter() - t0)
            payloads.append(out.tobytes())
    return latencies, payloads


def _serve(registry, cache_mb: float, layer_cache: bool):
    """One backend + gateway pair; caller stops both."""
    server = DjinnServer(
        registry, port=0,
        batching=BatchPolicy(max_batch=8, timeout_ms=1.0),
        layer_cache=(LayerCacheConfig(max_entries=4096, tolerance=0.0)
                     if layer_cache else None))
    server.start()
    gateway = GatewayServer([server.address], cache_mb=cache_mb,
                            health_interval_s=30.0)
    gateway.start()
    return server, gateway


def bench_cell(registry, net, requests: int, dup_frac: float,
               cache_mb: float, baseline_payloads) -> dict:
    inputs, dup_of = _inputs(net, requests, dup_frac)
    server, gateway = _serve(registry, cache_mb, layer_cache=True)
    try:
        t0 = time.perf_counter()
        latencies, payloads = _drive(gateway.address, inputs)
        wall_s = time.perf_counter() - t0
        stats = gateway.cache.stats()
        layer = server._executor.layer_caches.get(MODEL)
        layer_stats = layer.stats() if layer is not None else {}
    finally:
        gateway.stop()
        server.stop()

    # duplicates are the would-be hits; uniques the would-be misses
    hit_lats = [lat for i, lat in enumerate(latencies) if i in dup_of]
    miss_lats = [lat for i, lat in enumerate(latencies) if i not in dup_of]
    p50_hit = statistics.median(hit_lats) if hit_lats else None
    p50_miss = statistics.median(miss_lats) if miss_lats else None
    byte_identical = payloads == baseline_payloads
    return {
        "dup_frac": dup_frac,
        "cache_mb": cache_mb,
        "planned_duplicates": len(dup_of),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "evictions": stats["evictions"],
        "cache_bytes": stats["bytes"],
        "hit_rate": stats["hits"] / requests,
        "wall_s": wall_s,
        "mean_lat_ms": 1e3 * statistics.fmean(latencies),
        "p50_hit_ms": None if p50_hit is None else 1e3 * p50_hit,
        "p50_miss_ms": None if p50_miss is None else 1e3 * p50_miss,
        "hit_speedup": (None if not (p50_hit and p50_miss)
                        else p50_miss / p50_hit),
        "byte_identical": byte_identical,
        "layer_fidelity_max": layer_stats.get("fidelity_max"),
        "layer_hits": layer_stats.get("hits"),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--requests", type=int, default=120,
                        help="stream length per sweep cell")
    parser.add_argument("--dup-fracs", default="0,0.25,0.5",
                        help="comma-separated duplicate fractions")
    parser.add_argument("--sizes-mb", default="0.001,8.0",
                        help="comma-separated cache budgets in MiB (the "
                             "small one forces evictions; outputs are tiny)")
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR,
                                                      "BENCH_cache.json"))
    parser.add_argument("--check", action="store_true",
                        help="CI gate: byte identity, exact hits at full "
                             "budget, >= 2x hit-path speedup (on >= 4-core "
                             "hosts)")
    args = parser.parse_args(argv)

    dup_fracs = [float(f) for f in args.dup_fracs.split(",") if f.strip()]
    sizes_mb = [float(s) for s in args.sizes_mb.split(",") if s.strip()]
    full_budget = max(sizes_mb)
    registry = ModelRegistry()
    net = build_net(MODEL, materialize=True)
    registry.register(MODEL, net)

    results = {
        **gate_fields(),
        "model": MODEL,
        "requests": args.requests,
        "seed": SEED,
        "hit_speedup_gate": HIT_SPEEDUP_GATE,
        "baselines": [],
        "cells": [],
    }

    baselines = {}
    for dup_frac in dup_fracs:
        inputs, _ = _inputs(net, args.requests, dup_frac)
        server, gateway = _serve(registry, cache_mb=0.0, layer_cache=False)
        try:
            t0 = time.perf_counter()
            latencies, payloads = _drive(gateway.address, inputs)
            wall_s = time.perf_counter() - t0
        finally:
            gateway.stop()
            server.stop()
        baselines[dup_frac] = payloads
        results["baselines"].append({
            "dup_frac": dup_frac,
            "wall_s": wall_s,
            "mean_lat_ms": 1e3 * statistics.fmean(latencies),
        })
        print(f"baseline dup={dup_frac:4.2f}: "
              f"{1e3 * statistics.fmean(latencies):7.2f} ms/req "
              f"(cache off)")

    for dup_frac in dup_fracs:
        for cache_mb in sizes_mb:
            cell = bench_cell(registry, net, args.requests, dup_frac,
                              cache_mb, baselines[dup_frac])
            results["cells"].append(cell)
            speedup = cell["hit_speedup"]
            print(f"dup={dup_frac:4.2f} cache={cache_mb:6.3f}MiB: "
                  f"hit rate {cell['hit_rate']:5.2f}  "
                  f"evictions {cell['evictions']:4d}  "
                  f"hit speedup "
                  f"{'  n/a' if speedup is None else f'{speedup:5.2f}x'}  "
                  f"identical={cell['byte_identical']}")

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"wrote {args.out}")

    if args.check:
        failures = []
        for cell in results["cells"]:
            if not cell["byte_identical"]:
                failures.append(
                    f"dup={cell['dup_frac']} cache={cell['cache_mb']}MiB: "
                    f"cached answers are not byte-identical to the "
                    f"cache-off baseline")
            fidelity = cell["layer_fidelity_max"]
            if fidelity is not None and fidelity != 0.0:
                failures.append(
                    f"dup={cell['dup_frac']} cache={cell['cache_mb']}MiB: "
                    f"lossless layer cache reported fidelity {fidelity}")
            if cell["cache_mb"] == full_budget:
                if cell["hits"] != cell["planned_duplicates"]:
                    failures.append(
                        f"dup={cell['dup_frac']} at full budget: "
                        f"{cell['hits']} hits != "
                        f"{cell['planned_duplicates']} planned duplicates")
                if cell["evictions"] != 0:
                    failures.append(
                        f"dup={cell['dup_frac']} at full budget: "
                        f"{cell['evictions']} evictions from an "
                        f"over-provisioned cache")
        if results["gate_enforced"]:
            gated = [c for c in results["cells"]
                     if c["dup_frac"] == 0.5 and c["cache_mb"] == full_budget
                     and c["hit_speedup"] is not None]
            if not gated:
                failures.append("no dup_frac=0.5 full-budget cell to gate "
                                "the hit-path speedup on")
            for cell in gated:
                if cell["hit_speedup"] < HIT_SPEEDUP_GATE:
                    failures.append(
                        f"hit-path speedup {cell['hit_speedup']:.2f}x < "
                        f"{HIT_SPEEDUP_GATE}x at dup_frac=0.5")
        else:
            print(f"host has {results['host_cores']} cores "
                  f"(< {results['gate_min_cores']}): speedup gate recorded "
                  f"but not enforced")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        print("cache checks passed: byte-identical answers, exact hits at "
              "full budget, hit-path speedup gate satisfied")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
