"""SLO attainment under open-loop load: fixed vs adaptive scheduling.

The paper's service batches with a fixed target and a fixed coalescing
window — good for throughput, blind to deadlines.  This bench measures what
that blindness costs.  One small fleet (a gateway in front of a batching
backend paced by ``--floor`` per batch, the serial-device stand-in) is
driven open-loop at offered rates below, at, and above its measured
capacity; every request carries the same latency budget (``--deadline-ms``)
and the bench scores *SLO attainment* — the fraction of issued requests
answered within budget — per arm:

* ``fixed`` — the paper's policy: fixed batch, fixed window, no expiry.
  Late requests still get (useless) answers.
* ``adaptive`` — ``repro.sched``: EDF order, deadline-driven batch sizing
  and windowing, typed DEADLINE_EXCEEDED for requests that provably cannot
  make it (no forward pass spent on the dead).
* ``adaptive+shed`` — adaptive backends plus gateway admission control:
  requests predicted to miss are refused at the door with a typed
  OVERLOADED carrying a retry hint.

Open-loop matters here: a closed-loop generator would slow down with the
service and hide the overload; this one keeps offering at the configured
rate and charges queueing (anywhere) to the request, so attainment above
saturation collapses for the arm that cannot say no.

``--check`` gates that the adaptive policy strictly beats fixed p99
attainment at >= 1 load point at-or-above saturation, and that every
non-completed request was a *typed* rejection (shed or expired — never a
transport error).  The gate only enforces on hosts with >= 4 cores; the
JSON always records the honest numbers plus ``gate_enforced``.

Usage::

    python benchmarks/bench_slo.py                  # sweep + JSON
    python benchmarks/bench_slo.py --check          # CI gate
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.core import BatchPolicy, ModelRegistry, RequestClass  # noqa: E402
from repro.core import run_closed_loop_load, run_open_loop_load  # noqa: E402
from repro.gateway import ClusterLauncher, GatewayServer, RetryPolicy  # noqa: E402
from repro.models import build_spec  # noqa: E402
from repro.sched import QosConfig  # noqa: E402

sys.path.insert(0, os.path.dirname(__file__))

from _common import GATE_MIN_CORES, gate_fields  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Offered-rate multipliers over measured capacity; >= 1.0 is "saturated".
LOAD_POINTS = (0.7, 1.0, 1.4)


def _arms(max_batch: int) -> dict:
    """The three contenders: name -> (backend sched policy, gateway QoS).

    The shed arm scales the admission controller's serial-drain wait bound
    by ``1/max_batch``: the backend drains ``max_batch`` requests per
    forward pass, so the serial bound overestimates queue wait by exactly
    that factor and unscaled admission would shed at healthy loads.
    """
    return {
        "fixed": (None, None),
        "adaptive": ("adaptive", None),
        "adaptive+shed": ("adaptive",
                          QosConfig(admission=True,
                                    shed_margin=1.0 / max_batch)),
    }


def _input_factory(model: str):
    registry = ModelRegistry()
    spec = build_spec(model)
    registry.register_spec(model, spec, seed=0)
    base = np.random.default_rng(0).standard_normal(
        (1,) + tuple(spec.input_shape))
    x = base.astype(np.float32)
    return registry, lambda i: x


def _stack(registry, sched, qos, batching, floor_s):
    """A one-backend fleet behind a gateway, configured for one arm."""
    cluster = ClusterLauncher(registry, backends=1, batching=batching,
                              sched=sched, service_floor_s=floor_s)
    cluster.start()
    gateway = GatewayServer(
        cluster.addresses, policy="round_robin",
        retry=RetryPolicy(max_attempts=3, base_delay_s=0.005,
                          max_delay_s=0.02),
        health_interval_s=3600.0, qos=qos)
    gateway.start()
    return cluster, gateway


def _measure_capacity(registry, make_input, model, batching,
                      floor_s, seconds_budget: int) -> float:
    """Closed-loop qps of the fixed arm — the saturation anchor."""
    cluster, gateway = _stack(registry, None, None, batching, floor_s)
    try:
        host, port = gateway.address
        result = run_closed_loop_load(host, port, model, make_input,
                                      clients=16,
                                      requests_per_client=seconds_budget)
        return result.qps
    finally:
        gateway.stop()
        cluster.stop()


def bench_arm(name: str, sched, qos, registry, make_input, model: str, *,
              batching, floor_s: float, deadline_ms: float,
              capacity_qps: float, requests: int, connections: int) -> dict:
    cluster, gateway = _stack(registry, sched, qos, batching, floor_s)
    points = []
    try:
        host, port = gateway.address
        for p_idx, mult in enumerate(LOAD_POINTS):
            qps = capacity_qps * mult
            result = run_open_loop_load(
                host, port, model, make_input, qps=qps, requests=requests,
                classes=(RequestClass(name="slo", deadline_ms=deadline_ms),),
                connections=connections, seed=p_idx)
            points.append({
                "load_multiplier": mult,
                "offered_qps": qps,
                "issued": result.issued,
                "completed": result.completed,
                "shed": result.shed,
                "expired": result.expired,
                "errors": result.errors,
                "attained": result.attained,
                "attainment": result.attainment,
                "p95_latency_ms": result.p95_latency_s * 1e3,
                "p99_latency_ms": result.p99_latency_s * 1e3,
                "schedule_lag_p99_ms": result.schedule_lag_p99_s * 1e3,
            })
            print(f"{name:14s} x{mult:3.1f} ({qps:7.1f} qps): "
                  f"attainment {result.attainment:5.1%}  "
                  f"ok {result.completed:4d}  shed {result.shed:4d}  "
                  f"expired {result.expired:4d}  err {result.errors:3d}  "
                  f"p99 {result.p99_latency_s * 1e3:7.1f} ms")
    finally:
        gateway.stop()
        cluster.stop()
    return {"arm": name, "sched": sched or "none",
            "admission": qos is not None, "points": points}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--model", default="pos")
    parser.add_argument("--deadline-ms", type=float, default=30.0)
    parser.add_argument("--max-batch", type=int, default=8)
    parser.add_argument("--window-ms", type=float, default=5.0,
                        help="fixed coalescing window (the latency tax "
                             "adaptive is allowed to undercut)")
    parser.add_argument("--floor", type=float, default=0.004,
                        help="service floor seconds per executed batch "
                             "(serial-device pacing)")
    parser.add_argument("--requests", type=int, default=300,
                        help="open-loop requests per load point")
    parser.add_argument("--connections", type=int, default=24)
    parser.add_argument("--calibration-requests", type=int, default=20,
                        help="closed-loop requests/client for the capacity "
                             "measurement")
    parser.add_argument("--out", default=os.path.join(RESULTS_DIR,
                                                      "BENCH_slo.json"))
    parser.add_argument("--check", action="store_true",
                        help="CI gate: adaptive > fixed attainment at >= 1 "
                             "saturated load point, all rejections typed "
                             "(enforced only on >= 4-core hosts)")
    args = parser.parse_args(argv)

    gate = gate_fields()
    cores = gate["host_cores"]
    gate_enforced = gate["gate_enforced"]
    batching = BatchPolicy(max_batch=args.max_batch,
                           timeout_ms=args.window_ms)
    registry, make_input = _input_factory(args.model)

    capacity = _measure_capacity(registry, make_input, args.model, batching,
                                 args.floor, args.calibration_requests)
    print(f"measured capacity (fixed arm, closed loop): {capacity:.1f} qps")

    arms = [bench_arm(name, sched, qos, registry, make_input, args.model,
                      batching=batching, floor_s=args.floor,
                      deadline_ms=args.deadline_ms, capacity_qps=capacity,
                      requests=args.requests, connections=args.connections)
            for name, (sched, qos) in _arms(args.max_batch).items()]

    results = {
        **gate,
        "model": args.model,
        "deadline_ms": args.deadline_ms,
        "max_batch": args.max_batch,
        "window_ms": args.window_ms,
        "floor_s": args.floor,
        "capacity_qps": capacity,
        "load_points": list(LOAD_POINTS),
        "arms": arms,
    }

    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(args.out, "w") as handle:
        json.dump(results, handle, indent=2)
        handle.write("\n")
    print(f"wrote {args.out}")

    if args.check:
        if not gate_enforced:
            print(f"SLO gate SKIPPED: {cores} core(s) < {GATE_MIN_CORES} "
                  f"(saturating an open-loop fleet needs spare cores); "
                  f"numbers recorded with gate_enforced=false")
            return 0
        by_arm = {entry["arm"]: entry["points"] for entry in arms}
        failures = []
        # every non-completion must be a typed rejection, never a raw error
        for arm_name, points in by_arm.items():
            errors = sum(point["errors"] for point in points)
            if errors:
                failures.append(f"{arm_name}: {errors} untyped error(s) — "
                                f"every rejection must be typed")
        # adaptive must beat fixed attainment somewhere at/above saturation
        wins = [
            (a["load_multiplier"], a["attainment"], f["attainment"])
            for a, f in zip(by_arm["adaptive"], by_arm["fixed"])
            if a["load_multiplier"] >= 1.0
            and a["attainment"] > f["attainment"]
        ]
        if not wins:
            saturated = [(p["load_multiplier"], p["attainment"])
                         for p in by_arm["adaptive"]
                         if p["load_multiplier"] >= 1.0]
            fixed_pts = [(p["load_multiplier"], p["attainment"])
                         for p in by_arm["fixed"]
                         if p["load_multiplier"] >= 1.0]
            failures.append(
                f"adaptive never beat fixed attainment at a saturated load "
                f"point (adaptive {saturated} vs fixed {fixed_pts})")
        if failures:
            for failure in failures:
                print(f"CHECK FAILED: {failure}", file=sys.stderr)
            return 1
        best = max(wins, key=lambda w: w[1] - w[2])
        print(f"slo check passed: at x{best[0]:.1f} load adaptive attains "
              f"{best[1]:.1%} vs fixed {best[2]:.1%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
