"""Figure 6: performance-bottleneck analysis — modeled hardware counters
(IPC/peak, occupancy, L1/shared and L2 bandwidth utilization), weighted by
kernel execution time, at batch size 1.
"""

from repro.gpusim import all_app_models, profile_app

from _common import report


def compute():
    return {m.app: profile_app(m) for m in all_app_models()}


def test_fig6_bottleneck_counters(benchmark):
    profiles = benchmark(compute)
    lines = [f"{'app':5s} {'IPC/peak':>8s} {'occupancy':>9s} {'L1&shared':>9s} {'L2':>6s}"]
    for app, p in profiles.items():
        lines.append(
            f"{app:5s} {p.ipc_ratio:>8.2f} {p.occupancy:>9.2f} "
            f"{p.l1_shared_utilization:>9.2f} {p.l2_utilization:>6.2f}"
        )
    lines.append("(paper: NLP occupancy <20%, ASR >90%, IPC tracks occupancy,")
    lines.append(" memory-bandwidth utilizations low -> occupancy, not DRAM, is the limiter)")
    report("fig6", "Figure 6: performance bottleneck analysis (batch=1)", lines)

    assert profiles["asr"].occupancy > 0.9
    assert all(profiles[a].occupancy < 0.2 for a in ("pos", "chk", "ner"))
