"""Figure 12: throughput scaling with GPU-resident inputs (the paper pins
inputs in GPU memory to remove all PCIe transfers).
"""

from repro.gpusim import GpuServerModel, app_model
from repro.models import APPLICATIONS

from _common import report, series_row

GPU_COUNTS = (1, 2, 4, 8)


def sweep():
    return {
        app: GpuServerModel(app_model(app)).sweep(GPU_COUNTS, pinned=True)
        for app in APPLICATIONS
    }


def test_fig12_scaling_without_pcie(benchmark):
    data = benchmark.pedantic(sweep, rounds=1, iterations=1)
    header = "gpus     " + " ".join(f"{g:>10d}" for g in GPU_COUNTS)
    lines = ["relative throughput (vs 1 GPU), inputs pinned in GPU memory", header]
    for app in APPLICATIONS:
        pts = data[app]
        lines.append(series_row(app, [p.qps / pts[0].qps for p in pts]))
    lines.append("(paper: all applications exhibit near-linear improvement)")
    report("fig12", "Figure 12: throughput vs GPUs, no PCIe bandwidth limits", lines)

    for app in APPLICATIONS:
        pts = data[app]
        assert pts[-1].qps / pts[0].qps > 7.5, app
