"""The DES host-contention model corroborates the analytic scaling model."""

import pytest

from repro.gpusim import GpuServerModel, app_model
from repro.gpusim.hostsim import simulate_server


class TestAgreementWithAnalyticModel:
    def test_compute_bound_app_scales_linearly_in_both_models(self):
        model = app_model("imc")
        des_1 = simulate_server(model, 1)
        des_8 = simulate_server(model, 8)
        assert des_8.qps / des_1.qps == pytest.approx(8.0, rel=0.05)
        assert des_8.link_utilization < 0.5

    def test_nlp_plateau_emerges_in_the_des_too(self):
        """Both models flatten NLP at the same host-link ceiling."""
        model = app_model("pos")
        des = {n: simulate_server(model, n) for n in (1, 2, 4, 8)}
        rel = [des[n].qps / des[1].qps for n in (1, 2, 4, 8)]
        assert rel[2] > 3.3          # near-linear through 4
        assert rel[3] < 7.0          # capped at 8
        assert des[8].link_utilization > 0.95  # the link is the binding resource
        assert des[8].gpu_utilization < 0.9    # GPUs starve

    def test_absolute_cap_matches_the_analytic_min(self):
        """DES saturation throughput ~= host_link / bytes_per_query.

        The DES serializes transfer and compute per request (no overlap),
        so its cap can only approach the analytic bound from below.
        """
        from repro.gpusim.device import PLATFORM

        model = app_model("pos")
        des = simulate_server(model, 8)
        analytic_cap = PLATFORM.host_link_gbs * 1e9 / model.wire_bytes_per_query
        assert des.qps <= analytic_cap * 1.01
        assert des.qps > analytic_cap * 0.85

    def test_pinned_mode_removes_the_plateau(self):
        model = app_model("pos")
        pinned = simulate_server(model, 8, pinned=True)
        limited = simulate_server(model, 8)
        assert pinned.qps > limited.qps * 1.3
        assert pinned.link_utilization == 0.0

    def test_unconstrained_qps_matches_appmodel_rate(self):
        """With one GPU (no contention), the DES reduces to batch/time."""
        model = app_model("asr")
        des = simulate_server(model, 1)
        # DES serializes transfer+compute; the appmodel rate does the same
        expected = model.best_batch / model.gpu_query_time(model.best_batch)
        assert des.qps == pytest.approx(expected, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            simulate_server(app_model("imc"), 0)
