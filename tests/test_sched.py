"""`repro.sched` — SLO-aware scheduling: latency curves, EDF queueing,
admission control, policy decisions, and the batching executor wired to all
of it end to end (typed expiry, priority ordering, and the fixed-window
anchor regression).
"""

import math
import threading
import time

import numpy as np
import pytest

from repro.core import BatchingExecutor, BatchPolicy, ModelRegistry
from repro.models import build_net
from repro.obs.metrics import MetricsRegistry
from repro.sched import (
    AdaptiveSched,
    AdmissionController,
    DeadlineExceededError,
    EdfQueue,
    FixedSched,
    LatencyModel,
    QosConfig,
    SchedPolicy,
    TokenBucket,
    make_policy,
)


class Item:
    """Minimal EdfQueue item: rows + deadline + priority."""

    def __init__(self, rows=1, deadline_s=math.inf, priority=0, tag=""):
        self.inputs = np.zeros((rows, 1), dtype=np.float32)
        self.deadline_s = deadline_s
        self.priority = priority
        self.tag = tag


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, start=100.0):
        self.now = start

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


# ------------------------------------------------------------ latency model
class TestLatencyModel:
    def test_pow2_bucketing(self):
        lm = LatencyModel()
        lm.observe("m", 3, 0.010)   # bucket 4
        lm.observe("m", 4, 0.030)   # same bucket: EWMA pulls toward 0.030
        assert lm.known_buckets("m") == {4: pytest.approx(0.014)}

    def test_ewma_converges(self):
        lm = LatencyModel(alpha=0.5)
        for _ in range(20):
            lm.observe("m", 1, 0.008)
        assert lm.estimate_s("m", 1) == pytest.approx(0.008, rel=1e-3)

    def test_unknown_model_is_zero(self):
        assert LatencyModel().estimate_s("nope", 4) == 0.0

    def test_interpolates_upward_from_nearest_bucket(self):
        lm = LatencyModel()
        lm.observe("m", 2, 0.010)
        # bucket 8 unknown: scale the bucket-2 estimate linearly in rows
        assert lm.estimate_s("m", 8) == pytest.approx(0.040)
        # smaller-than-known batches are not discounted (fixed overhead
        # dominates): the nearest estimate is used as-is
        assert lm.estimate_s("m", 1) == pytest.approx(0.010)

    def test_seed_yields_to_observations(self):
        lm = LatencyModel(alpha=1.0)
        lm.seed("m", 1, 0.5)
        lm.observe("m", 1, 0.002)
        assert lm.estimate_s("m", 1) == pytest.approx(0.002)
        lm.seed("m", 1, 0.5)  # no-op: bucket already has data
        assert lm.estimate_s("m", 1) == pytest.approx(0.002)

    def test_seed_from_metrics_reads_latency_family(self):
        registry = MetricsRegistry()
        hist = registry.histogram(
            "djinn_request_latency_seconds", "served latency",
            labelnames=("model",), buckets=(0.001, 0.01, 0.1, 1.0))
        for _ in range(10):
            hist.labels(model="dig").observe(0.02)
        lm = LatencyModel()
        assert lm.seed_from_metrics(registry) == 1
        assert lm.estimate_s("dig", 1) > 0.0

    def test_seed_from_metrics_without_family_is_noop(self):
        assert LatencyModel().seed_from_metrics(MetricsRegistry()) == 0

    def test_alpha_validated(self):
        with pytest.raises(ValueError, match="alpha"):
            LatencyModel(alpha=0.0)


# ---------------------------------------------------------------- EDF queue
class TestEdfQueue:
    def _drain(self, queue, clock, target=16):
        batch, expired = queue.collect(
            FixedSched(), clock=clock, est_s=lambda rows: 0.0,
            max_batch=target, timeout_s=0.0)
        return batch, expired

    def test_edf_order_within_priority(self):
        clock = FakeClock()
        q = EdfQueue()
        q.put(Item(deadline_s=clock.now + 3.0, tag="late"))
        q.put(Item(deadline_s=clock.now + 1.0, tag="tight"))
        q.put(Item(deadline_s=clock.now + 2.0, tag="mid"))
        batch, expired = self._drain(q, clock)
        assert [i.tag for i in batch] == ["tight", "mid", "late"]
        assert expired == []

    def test_priority_beats_deadline(self):
        clock = FakeClock()
        q = EdfQueue()
        q.put(Item(deadline_s=clock.now + 0.1, priority=0, tag="urgent-low"))
        q.put(Item(deadline_s=clock.now + 9.0, priority=5, tag="lazy-high"))
        batch, _ = self._drain(q, clock)
        assert [i.tag for i in batch] == ["lazy-high", "urgent-low"]

    def test_expired_split_from_batch(self):
        clock = FakeClock()
        q = EdfQueue()
        q.put(Item(deadline_s=clock.now - 0.5, tag="dead"))
        q.put(Item(deadline_s=clock.now + 5.0, tag="alive"))
        batch, expired = self._drain(q, clock)
        assert [i.tag for i in batch] == ["alive"]
        assert [i.tag for i in expired] == ["dead"]

    def test_provably_unmeetable_deadline_expires_early(self):
        clock = FakeClock()
        q = EdfQueue()
        # deadline is in the future, but even a batch of one takes longer
        q.put(Item(deadline_s=clock.now + 0.010, tag="doomed"))
        batch, expired = q.collect(
            FixedSched(), clock=clock, est_s=lambda rows: 0.050,
            max_batch=4, timeout_s=0.0)
        assert batch == []
        assert [i.tag for i in expired] == ["doomed"]

    def test_close_unblocks_collect(self):
        q = EdfQueue()
        out = []

        def worker():
            out.append(q.collect(FixedSched(), clock=time.monotonic,
                                 est_s=lambda rows: 0.0, max_batch=4,
                                 timeout_s=1.0))

        t = threading.Thread(target=worker, daemon=True)
        t.start()
        q.put(None)
        t.join(timeout=5.0)
        assert not t.is_alive()
        assert out == [([], [])]
        assert q.finished

    def test_depth_counts_rows_not_items(self):
        q = EdfQueue()
        q.put(Item(rows=3))
        q.put(Item(rows=2))
        assert q.depth_rows() == 5


# ------------------------------------------------------------------ policies
class TestPolicies:
    def _plan(self, policy, **kw):
        defaults = dict(now=100.0, depth_rows=1, min_deadline_s=math.inf,
                        max_batch=8, timeout_s=0.010,
                        est_s=lambda rows: 0.0, active_models=1)
        defaults.update(kw)
        return policy.plan(**defaults)

    def test_fixed_returns_configured_window(self):
        d = self._plan(FixedSched())
        assert (d.rows, d.wait_s) == (8, 0.010)

    def test_adaptive_full_batch_dispatches_now(self):
        d = self._plan(AdaptiveSched(), depth_rows=8)
        assert (d.rows, d.wait_s) == (8, 0.0)

    def test_adaptive_co_schedules_shallow_queues(self):
        d = self._plan(AdaptiveSched(co_sched_depth=2), depth_rows=2,
                       active_models=3)
        assert (d.rows, d.wait_s) == (2, 0.0)

    def test_adaptive_cold_curve_degrades_to_fixed(self):
        d = self._plan(AdaptiveSched(), min_deadline_s=100.0 + 0.005)
        assert d.rows == 8
        assert 0.0 < d.wait_s <= 0.010

    def test_adaptive_shrinks_batch_to_fit_tight_deadline(self):
        # est(b) = 1 ms per row: a batch of 8 takes 8 ms but the tightest
        # deadline is 3 ms out — halve to 2 rows (2 ms fits, 4 ms does not)
        d = self._plan(AdaptiveSched(), min_deadline_s=100.0 + 0.003,
                       est_s=lambda rows: rows * 0.001)
        assert d.rows == 2
        assert d.wait_s <= 0.003

    def test_adaptive_wait_is_headroom_fraction_of_slack(self):
        d = self._plan(AdaptiveSched(headroom_frac=0.5),
                       min_deadline_s=100.0 + 0.008,
                       est_s=lambda rows: rows * 0.0005)
        # slack after est(8)=4ms is 4ms; wait half of it
        assert d.rows == 8
        assert d.wait_s == pytest.approx(0.002)

    def test_adaptive_validation(self):
        with pytest.raises(ValueError, match="co_sched_depth"):
            AdaptiveSched(co_sched_depth=-1)
        with pytest.raises(ValueError, match="headroom_frac"):
            AdaptiveSched(headroom_frac=1.5)

    def test_make_policy_resolves_names_and_instances(self):
        assert isinstance(make_policy("fixed"), FixedSched)
        assert isinstance(make_policy("adaptive"), AdaptiveSched)
        custom = AdaptiveSched(co_sched_depth=0)
        assert make_policy(custom) is custom
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("lifo")


# -------------------------------------------------------- admission control
class TestTokenBucket:
    def test_burst_then_refill(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        assert bucket.try_take() and bucket.try_take()
        assert not bucket.try_take()
        clock.advance(0.101)  # one token accrues (plus float headroom)
        assert bucket.try_take()
        assert not bucket.try_take()

    def test_retry_after_tracks_deficit(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
        assert bucket.try_take()
        assert bucket.retry_after_s() == pytest.approx(0.1)
        clock.advance(0.05)
        assert bucket.retry_after_s() == pytest.approx(0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0, burst=1.0)


class TestAdmissionController:
    def _controller(self, clock, **cfg):
        config = QosConfig(**cfg)
        latency = LatencyModel()
        latency.seed("m", 1, 0.010)
        return AdmissionController(config, latency, clock=clock), latency

    def test_admits_when_idle(self):
        clock = FakeClock()
        ctrl, _ = self._controller(clock)
        assert ctrl.admit("m", clock.now + 1.0, "", outstanding=0) is None

    def test_sheds_predicted_late(self):
        clock = FakeClock()
        ctrl, _ = self._controller(clock)
        # 10 in flight x 10 ms each = 100 ms predicted wait; 20 ms budget
        rejection = ctrl.admit("m", clock.now + 0.020, "", outstanding=10)
        assert rejection is not None
        assert rejection.reason == "predicted_late"
        assert rejection.retry_after_ms == pytest.approx(100.0)

    def test_shed_margin_scales_the_bound(self):
        clock = FakeClock()
        strict, _ = self._controller(clock, shed_margin=3.0)
        lax, _ = self._controller(clock, shed_margin=1.0)
        # 2 x 10 ms = 20 ms wait; 35 ms budget admits at margin 1,
        # sheds at margin 3 (60 ms scaled wait)
        assert lax.admit("m", clock.now + 0.035, "", outstanding=2) is None
        assert strict.admit("m", clock.now + 0.035, "", outstanding=2) is not None

    def test_no_deadline_never_predicted_late(self):
        clock = FakeClock()
        ctrl, _ = self._controller(clock)
        assert ctrl.admit("m", None, "", outstanding=1000) is None

    def test_tenant_throttle_is_per_tenant(self):
        clock = FakeClock()
        ctrl, _ = self._controller(clock, tenant_qps=10.0, tenant_burst=1.0)
        assert ctrl.admit("m", None, "alice", outstanding=0) is None
        rejection = ctrl.admit("m", None, "alice", outstanding=0)
        assert rejection is not None and rejection.reason == "tenant_throttle"
        assert rejection.retry_after_ms > 0.0
        # bob has his own bucket
        assert ctrl.admit("m", None, "bob", outstanding=0) is None

    def test_anonymous_requests_bypass_throttle(self):
        clock = FakeClock()
        ctrl, _ = self._controller(clock, tenant_qps=10.0, tenant_burst=1.0)
        for _ in range(5):
            assert ctrl.admit("m", None, "", outstanding=0) is None

    def test_qos_config_validation(self):
        with pytest.raises(ValueError, match="hedge_ms"):
            QosConfig(hedge_ms=-2.0)
        QosConfig(hedge_ms=-1.0)  # sentinel: derive from the curve
        with pytest.raises(ValueError, match="tenant_qps"):
            QosConfig(tenant_qps=-1.0)
        with pytest.raises(ValueError, match="shed_margin"):
            QosConfig(shed_margin=0.0)


# ----------------------------------------------------- executor integration
@pytest.fixture(scope="module")
def sched_registry():
    reg = ModelRegistry()
    reg.register("dig", build_net("dig", materialize=True))
    return reg


def dig_batch(n=1):
    return np.full((n, 1, 32, 32), 0.25, dtype=np.float32)


class TestExecutorScheduling:
    def test_expired_request_rejected_before_forward(self, sched_registry):
        metrics = MetricsRegistry()
        executor = BatchingExecutor(
            sched_registry, BatchPolicy(max_batch=4, timeout_ms=5.0),
            sched="adaptive", metrics=metrics)
        try:
            past = time.monotonic() - 1.0
            with pytest.raises(DeadlineExceededError, match="expired in queue"):
                executor.submit("dig", dig_batch(), qos=(past, 0, ""))
            fam = metrics.get("djinn_sched_expired_total")
            assert fam is not None
            assert sum(c.value for _, c in fam.children()) == 1
        finally:
            executor.close()

    def test_scheduled_path_serves_and_learns_latency(self, sched_registry):
        executor = BatchingExecutor(
            sched_registry, BatchPolicy(max_batch=4, timeout_ms=1.0),
            sched="adaptive")
        try:
            net = sched_registry.get("dig")
            x = dig_batch(2)
            out = executor.submit("dig", x,
                                  qos=(time.monotonic() + 30.0, 0, "t"))
            np.testing.assert_allclose(out, net.forward(x), rtol=1e-5)
            assert executor.latency.estimate_s("dig", 2) > 0.0
        finally:
            executor.close()

    def test_qos_less_submits_work_under_sched(self, sched_registry):
        executor = BatchingExecutor(
            sched_registry, BatchPolicy(max_batch=4, timeout_ms=1.0),
            sched="fixed")
        try:
            out = executor.submit("dig", dig_batch())
            assert out.shape == (1, 10)
        finally:
            executor.close()

    def test_high_priority_overtakes_low_in_queue(self, sched_registry):
        """While the worker is stalled on a first batch, a later high-
        priority submit must be served before earlier low-priority ones."""
        executor = BatchingExecutor(
            sched_registry, BatchPolicy(max_batch=1, timeout_ms=1.0),
            sched="adaptive", service_floor_s=0.15)
        order = []
        order_lock = threading.Lock()
        started = threading.Event()

        def submit(tag, priority, delay):
            if tag == "first":
                started.set()
            else:
                started.wait()
                time.sleep(delay)
            executor.submit("dig", dig_batch(),
                            qos=(time.monotonic() + 30.0, priority, ""))
            with order_lock:
                order.append(tag)

        threads = [
            threading.Thread(target=submit, args=("first", 0, 0.0)),
            threading.Thread(target=submit, args=("low", 0, 0.02)),
            threading.Thread(target=submit, args=("high", 9, 0.05)),
        ]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=30.0)
            # "first" occupies the worker; "low" and "high" queue behind it
            # and must come back priority-first despite arrival order
            assert order[0] == "first"
            assert order[1:] == ["high", "low"]
        finally:
            executor.close()

    def test_fixed_window_anchored_at_enqueue(self, sched_registry):
        """Regression: the legacy collector's coalescing window starts at
        the first request's *enqueue* time, not at worker wake-up.  A
        request the worker picks up late (stalled behind a long batch) has
        already served its window and must dispatch immediately — the
        drifty collector re-anchored at wake-up and made every queued
        request pay the wait twice."""
        from queue import Queue

        from repro.core.batching import _Pending

        executor = BatchingExecutor(
            sched_registry, BatchPolicy(max_batch=4, timeout_ms=100.0))
        try:
            queue = Queue()
            # enqueued 50 ms ago: the 100 ms window is half spent already
            pending = _Pending(dig_batch(), None, time.monotonic() - 0.05)
            queue.put(pending)
            start = time.monotonic()
            batch = executor._collect(queue)
            elapsed = time.monotonic() - start
            assert batch == [pending]
            # remaining window is ~50 ms; the drifty collector would have
            # waited the full 100 ms from wake-up
            assert elapsed < 0.085, (
                f"collector waited {elapsed * 1e3:.1f} ms — window "
                f"re-anchored at worker wakeup instead of enqueue")
        finally:
            executor.close()

    def test_stale_request_dispatches_without_waiting(self, sched_registry):
        """The drift fix's limit case: a request older than the whole
        window dispatches with no coalescing wait at all."""
        from queue import Queue

        from repro.core.batching import _Pending

        executor = BatchingExecutor(
            sched_registry, BatchPolicy(max_batch=4, timeout_ms=200.0))
        try:
            queue = Queue()
            pending = _Pending(dig_batch(), None, time.monotonic() - 1.0)
            queue.put(pending)
            start = time.monotonic()
            batch = executor._collect(queue)
            elapsed = time.monotonic() - start
            assert batch == [pending]
            assert elapsed < 0.05, (
                f"stale request still waited {elapsed * 1e3:.1f} ms")
        finally:
            executor.close()
