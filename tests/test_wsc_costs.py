"""Unit tests for the TCO cost model (Table 4 arithmetic)."""

import pytest

from repro.wsc import CostFactors, Inventory, monthly_loan_payment, tco


class TestLoanMath:
    def test_zero_rate_is_straight_line(self):
        assert monthly_loan_payment(3600.0, 0.0, 36) == pytest.approx(100.0)

    def test_payment_exceeds_straight_line_with_interest(self):
        assert monthly_loan_payment(3600.0, 0.08, 36) > 100.0

    def test_total_interest_reasonable_for_8pct_3yr(self):
        principal = 1_000_000.0
        payments = monthly_loan_payment(principal, 0.08, 36) * 36
        interest_frac = (payments - principal) / principal
        assert 0.10 < interest_frac < 0.16  # ~12.8% for 8% APR over 3 years

    def test_validation(self):
        with pytest.raises(ValueError):
            monthly_loan_payment(-1.0, 0.08, 36)
        with pytest.raises(ValueError):
            monthly_loan_payment(1.0, 0.08, 0)


class TestInventory:
    def test_watts(self):
        inv = Inventory(beefy_servers=2, wimpy_servers=4, gpus=8)
        factors = CostFactors()
        assert inv.watts(factors) == 2 * 300 + 4 * 75 + 8 * 240

    def test_hardware_cost_components(self):
        inv = Inventory(beefy_servers=1, wimpy_servers=1, gpus=2, nics=3)
        hw = inv.hardware_cost(CostFactors())
        assert hw["servers"] == 6864 + 1716
        assert hw["gpus"] == 2 * 3314
        assert hw["network"] == 3 * 750

    def test_nic_cost_factor_scales_network(self):
        inv = Inventory(nics=10, nic_cost_factor=2.5)
        assert inv.hardware_cost(CostFactors())["network"] == 10 * 750 * 2.5

    def test_upgrade_cost_charged_per_upgraded_server(self):
        inv = Inventory(beefy_servers=5, upgraded_servers=2, upgrade_unit_cost=250.0)
        assert inv.hardware_cost(CostFactors())["servers"] == 5 * 6864 + 500

    def test_addition(self):
        total = Inventory(beefy_servers=1, gpus=2) + Inventory(wimpy_servers=3, nics=4)
        assert total.beefy_servers == 1 and total.wimpy_servers == 3
        assert total.gpus == 2 and total.nics == 4

    def test_addition_rejects_mixed_network_pricing(self):
        with pytest.raises(ValueError):
            Inventory(nic_cost_factor=1.0) + Inventory(nic_cost_factor=2.0)


class TestTco:
    def test_all_components_positive_for_real_inventory(self):
        breakdown = tco(Inventory(beefy_servers=100, gpus=50, nics=120))
        for name, value in breakdown.as_dict().items():
            assert value > 0, name
        assert breakdown.total == pytest.approx(sum(breakdown.as_dict().values()))

    def test_facility_capex_is_10_dollars_per_watt(self):
        breakdown = tco(Inventory(beefy_servers=1))
        assert breakdown.facility == pytest.approx(300 * 10)

    def test_power_cost_uses_pue_and_rate(self):
        factors = CostFactors()
        breakdown = tco(Inventory(beefy_servers=1), factors)
        expected = 300 * 1.1 * (24 * 365 / 12) * 36 * 0.067 / 1000
        assert breakdown.power == pytest.approx(expected)

    def test_opex_is_4_cents_per_watt_month(self):
        breakdown = tco(Inventory(beefy_servers=1))
        assert breakdown.opex == pytest.approx(300 * 0.04 * 36)

    def test_maintenance_is_5pct_of_hardware(self):
        breakdown = tco(Inventory(beefy_servers=1))
        assert breakdown.maintenance == pytest.approx(0.05 * 6864)

    def test_tco_scales_linearly_with_fleet(self):
        one = tco(Inventory(beefy_servers=10, gpus=5, nics=10)).total
        ten = tco(Inventory(beefy_servers=100, gpus=50, nics=100)).total
        assert ten == pytest.approx(10 * one, rel=1e-9)

    def test_gpu_heavy_inventory_is_power_dominated_vs_server_count(self):
        """A GPU's lifetime power+facility cost is comparable to its
        purchase price — the effect the paper's TCO hinges on."""
        breakdown = tco(Inventory(gpus=1))
        lifetime_power_side = breakdown.facility + breakdown.power + breakdown.opex
        assert lifetime_power_side > 0.8 * breakdown.gpus
