"""Unit tests for repro.obs: metrics, tracing, and per-layer profiling."""

import json
import logging
import math
import struct
import threading

import numpy as np
import pytest

from repro.obs import (
    DEFAULT_LATENCY_BUCKETS_S,
    Histogram,
    LayerTimer,
    MetricsRegistry,
    NOOP_SPAN,
    Tracer,
    coverage,
    format_trace,
    log_event,
    merge_dumps,
    new_id,
    parse_exposition,
    read_dump_region,
    render_exposition,
    write_dump_region,
)
from repro.obs.metrics import DUMP_REGION_HEADER


class FakeClock:
    """Hand-driven monotonic clock for deterministic timing tests."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now

    def tick(self, dt):
        self.now += dt
        return self.now


# ---------------------------------------------------------------------- metrics
class TestHistogram:
    def test_default_buckets_are_log_scale(self):
        bounds = DEFAULT_LATENCY_BUCKETS_S
        assert bounds[0] == pytest.approx(1e-4)
        for lo, hi in zip(bounds, bounds[1:]):
            assert hi == pytest.approx(2 * lo)
        # spans 100µs .. ~100s — covers every Tonic latency in the paper
        assert bounds[-1] > 50.0

    def test_bucket_boundaries_are_le_inclusive(self):
        """A value exactly on a bound lands in that bound's bucket
        (Prometheus ``le`` semantics), values just above go one up."""
        hist = Histogram(buckets=(1.0, 2.0, 4.0))
        hist.observe(1.0)   # == bound 1.0 -> bucket 0
        hist.observe(1.5)   # (1, 2]      -> bucket 1
        hist.observe(2.0)   # == bound 2.0 -> bucket 1
        hist.observe(2.0001)  # (2, 4]    -> bucket 2
        hist.observe(99.0)  # > last bound -> +Inf bucket
        assert hist.counts() == [1, 2, 1, 1]
        assert hist.count == 5

    def test_sum_min_max(self):
        hist = Histogram(buckets=(1.0,))
        for v in (0.5, 3.0, 2.0):
            hist.observe(v)
        assert hist.sum == pytest.approx(5.5)
        assert hist.min == pytest.approx(0.5)
        assert hist.max == pytest.approx(3.0)

    def test_empty_histogram_reads_zero(self):
        hist = Histogram(buckets=(1.0,))
        assert hist.count == 0 and hist.sum == 0.0
        assert hist.min == 0.0 and hist.max == 0.0
        assert hist.percentile(95) == 0.0

    def test_window_percentiles_are_exact(self):
        hist = Histogram(buckets=(1.0, 2.0), window=100)
        for v in range(1, 101):  # 1..100
            hist.observe(float(v))
        assert hist.percentile(0) == pytest.approx(1.0)
        assert hist.percentile(50) == pytest.approx(50.5)
        assert hist.percentile(95) == pytest.approx(95.05)
        assert hist.percentile(100) == pytest.approx(100.0)

    def test_bucket_percentile_fallback_is_bounded(self):
        """Without a window, percentiles interpolate within the matching
        bucket — always between the true min and max."""
        hist = Histogram(buckets=(1e-3, 1e-2, 1e-1))
        for v in (0.004, 0.005, 0.006, 0.007):
            hist.observe(v)
        p50 = hist.percentile(50)
        assert 1e-3 <= p50 <= 1e-2

    def test_merge_counts(self):
        a = Histogram(buckets=(1.0, 2.0))
        b = Histogram(buckets=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(10.0)
        a.merge_counts(b.counts(), b.count, b.sum, b.min, b.max)
        assert a.counts() == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(12.0)
        assert a.min == pytest.approx(0.5)
        assert a.max == pytest.approx(10.0)

    def test_merge_counts_rejects_mismatched_buckets(self):
        a = Histogram(buckets=(1.0, 2.0))
        with pytest.raises(ValueError, match="mismatch"):
            a.merge_counts([0, 0], 0, 0.0, 0.0, 0.0)

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            Histogram(buckets=(1.0, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            Histogram(buckets=())

    def test_thread_safety_under_concurrent_observe(self):
        hist = Histogram(buckets=(0.5,), window=64)
        n, threads = 2000, []
        for _ in range(4):
            t = threading.Thread(
                target=lambda: [hist.observe(0.1) for _ in range(n)])
            threads.append(t)
            t.start()
        for t in threads:
            t.join()
        assert hist.count == 4 * n
        assert hist.sum == pytest.approx(0.1 * 4 * n)

    def test_exemplars_keep_the_largest_observations(self):
        hist = Histogram(buckets=(0.5,), exemplars=3)
        for v in (0.1, 0.9, 0.4, 2.0, 1.5, 0.2):
            hist.observe(v, exemplar=f"t{v}")
        assert hist.exemplars() == [(2.0, "t2.0"), (1.5, "t1.5"),
                                    (0.9, "t0.9")]

    def test_exemplars_off_by_default(self):
        hist = Histogram(buckets=(0.5,))
        hist.observe(1.0, exemplar="x")
        assert hist.exemplars() == []

    def test_exemplar_correctness_under_concurrent_observe(self):
        # 4 threads race on the exemplar heap with globally unique values;
        # the survivors must be exactly the 5 largest, each still paired
        # with the label it was observed under
        hist = Histogram(buckets=(0.5,), exemplars=5)
        n, threads = 500, []

        def worker(t):
            for j in range(n):
                v = t * n + j + 1
                hist.observe(float(v), exemplar=str(v))

        for t in range(4):
            thread = threading.Thread(target=worker, args=(t,))
            threads.append(thread)
            thread.start()
        for thread in threads:
            thread.join()
        assert hist.count == 4 * n
        exemplars = hist.exemplars()
        assert [v for v, _ in exemplars] == \
            [float(4 * n - k) for k in range(5)]
        assert all(label == str(int(v)) for v, label in exemplars)


class TestRegistry:
    def test_counter_gauge_and_labels(self):
        reg = MetricsRegistry()
        requests = reg.counter("requests_total", "reqs", ("model",))
        requests.labels(model="dig").inc()
        requests.labels(model="dig").inc(2)
        requests.labels(model="pos").inc()
        assert requests.labels(model="dig").value == 3
        assert requests.labels(model="pos").value == 1
        inflight = reg.gauge("inflight")
        inflight.inc(5)
        inflight.dec(2)
        assert inflight.labels().value == 3

    def test_counter_rejects_negative_and_gauge_allows(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("c_total").inc(-1)
        reg.gauge("g").set(-1.5)

    def test_label_schema_enforced(self):
        reg = MetricsRegistry()
        family = reg.counter("x_total", labelnames=("model",))
        with pytest.raises(ValueError, match="labels"):
            family.labels(wrong="dig")
        with pytest.raises(ValueError, match="labels"):
            family.inc()  # label-less convenience needs a label-less family

    def test_registration_is_idempotent_but_conflicts_raise(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", labelnames=("model",))
        assert reg.counter("x_total", labelnames=("model",)) is a
        with pytest.raises(ValueError, match="already registered"):
            reg.gauge("x_total")
        with pytest.raises(ValueError, match="labels"):
            reg.counter("x_total", labelnames=("other",))

    def test_dump_structure(self):
        reg = MetricsRegistry()
        reg.counter("n_total", "help text", ("model",)).labels(model="dig").inc()
        reg.histogram("lat_seconds", buckets=(1.0, 2.0)).observe(1.5)
        dump = reg.dump()
        assert json.loads(json.dumps(dump)) == dump  # JSON-able
        counter = dump["metrics"]["n_total"]
        assert counter["type"] == "counter"
        assert counter["samples"] == [{"labels": {"model": "dig"}, "value": 1.0}]
        hist = dump["metrics"]["lat_seconds"]
        assert hist["buckets"] == [1.0, 2.0]
        (sample,) = hist["samples"]
        assert sample["counts"] == [0, 1, 0]
        assert sample["count"] == 1 and sample["sum"] == pytest.approx(1.5)


class TestExposition:
    def build(self):
        reg = MetricsRegistry()
        reg.counter("djinn_requests_total", "Requests.", ("model",)) \
            .labels(model="dig").inc(7)
        hist = reg.histogram("djinn_request_latency_seconds", "Latency.",
                             ("model",), buckets=(0.001, 0.01))
        hist.labels(model="dig").observe(0.0005)
        hist.labels(model="dig").observe(0.005)
        hist.labels(model="dig").observe(5.0)
        return reg

    def test_render_format(self):
        text = self.build().expose()
        assert "# TYPE djinn_requests_total counter" in text
        assert 'djinn_requests_total{model="dig"} 7' in text
        # cumulative buckets, +Inf last, sum/count present
        assert 'djinn_request_latency_seconds_bucket{model="dig",le="0.001"} 1' in text
        assert 'djinn_request_latency_seconds_bucket{model="dig",le="0.01"} 2' in text
        assert 'djinn_request_latency_seconds_bucket{model="dig",le="+Inf"} 3' in text
        assert 'djinn_request_latency_seconds_count{model="dig"} 3' in text

    def test_parse_round_trip(self):
        text = self.build().expose()
        samples = parse_exposition(text)
        key = (("model", "dig"),)
        assert samples["djinn_requests_total"][key] == 7
        assert samples["djinn_request_latency_seconds_count"][key] == 3
        inf_key = (("model", "dig"), ("le", "+Inf"))
        assert samples["djinn_request_latency_seconds_bucket"][inf_key] == 3

    def test_parse_rejects_malformed_lines(self):
        for bad in ("not a metric line!",
                    'x_total{unclosed="1} 2',
                    "x_total 1 2 3",
                    "# BOGUS x_total counter"):
            with pytest.raises(ValueError):
                parse_exposition(bad + "\n")

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x_total", labelnames=("path",)) \
            .labels(path='a"b\\c\nd').inc()
        parsed = parse_exposition(reg.expose())
        assert "x_total" in parsed  # strict parser accepts the escaping


class TestMergeDumps:
    def test_counters_sum_and_histograms_merge(self):
        regs = [MetricsRegistry() for _ in range(2)]
        for i, reg in enumerate(regs):
            reg.counter("djinn_requests_total", labelnames=("model",)) \
                .labels(model="dig").inc(i + 1)
            hist = reg.histogram("lat_seconds", buckets=(1.0, 2.0))
            hist.observe(0.5 + i)  # 0.5 and 1.5
        merged = merge_dumps(reg.dump() for reg in regs)
        counter = merged["metrics"]["djinn_requests_total"]["samples"][0]
        assert counter["value"] == 3.0
        hist = merged["metrics"]["lat_seconds"]["samples"][0]
        assert hist["counts"] == [1, 1, 0]
        assert hist["count"] == 2
        assert hist["min"] == pytest.approx(0.5)
        assert hist["max"] == pytest.approx(1.5)
        # merged dump renders and parses like any single-registry dump
        parse_exposition(render_exposition(merged))

    def test_disjoint_label_sets_concatenate(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total", labelnames=("model",)).labels(model="dig").inc()
        b.counter("x_total", labelnames=("model",)).labels(model="pos").inc(4)
        merged = merge_dumps([a.dump(), b.dump()])
        by_model = {s["labels"]["model"]: s["value"]
                    for s in merged["metrics"]["x_total"]["samples"]}
        assert by_model == {"dig": 1.0, "pos": 4.0}

    def test_mismatched_buckets_raise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,)).observe(0.5)
        b.histogram("h", buckets=(2.0,)).observe(0.5)
        with pytest.raises(ValueError, match="bucket"):
            merge_dumps([a.dump(), b.dump()])

    def test_mismatched_types_raise(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("x_total").inc()
        b.gauge("x_total").set(1)
        with pytest.raises(ValueError, match="conflicting"):
            merge_dumps([a.dump(), b.dump()])

    def test_exemplars_survive_dump_and_merge(self):
        regs = [MetricsRegistry() for _ in range(2)]
        for i, reg in enumerate(regs):
            hist = reg.histogram("lat_seconds", labelnames=("model",),
                                 buckets=(1.0,), exemplars=2)
            hist.labels(model="dig").observe(float(i + 1),
                                             exemplar=f"trace{i}")
        merged = merge_dumps(reg.dump() for reg in regs)
        (sample,) = merged["metrics"]["lat_seconds"]["samples"]
        # cap 2 keeps both; slowest first, labels intact across the merge
        assert sample["exemplars"] == [[2.0, "trace1"], [1.0, "trace0"]]


class TestDumpRegion:
    """Seqlock shm metric regions (the procpool worker → parent path)."""

    def test_round_trip(self):
        buf = bytearray(4096)
        assert read_dump_region(buf) is None  # never written
        reg = MetricsRegistry()
        reg.counter("x_total").inc(3)
        write_dump_region(buf, reg.dump())
        assert read_dump_region(buf) == reg.dump()

    def test_oversized_payload_rejected(self):
        buf = bytearray(DUMP_REGION_HEADER + 8)
        with pytest.raises(ValueError, match="capacity"):
            write_dump_region(buf, {"metrics": {"pad": "x" * 64}})

    def test_odd_version_reads_as_torn(self):
        buf = bytearray(4096)
        write_dump_region(buf, {"metrics": {}})
        # forge a writer stuck mid-update: odd version never settles
        struct.pack_into("<Q", buf, 0, 7)
        assert read_dump_region(buf, attempts=4) is None

    def test_merge_under_active_writers_never_tears(self):
        # One writer per region updates two lockstep counters and
        # republishes as fast as it can; readers concurrently snapshot and
        # merge_dumps the regions.  Every successful read must satisfy the
        # lockstep invariant — a torn read (stale/fresh payload mix) would
        # break it or fail to parse, and the seqlock must allow neither.
        regions = [bytearray(1 << 16) for _ in range(2)]
        stop = threading.Event()
        failures = []

        def writer(buf, model):
            reg = MetricsRegistry()
            a = reg.counter("djinn_requests_total", labelnames=("model",))
            b = reg.counter("djinn_shadow_total", labelnames=("model",))
            while not stop.is_set():
                a.labels(model=model).inc()
                b.labels(model=model).inc()
                write_dump_region(buf, reg.dump())

        def lockstep(dump):
            totals = {}
            for name in ("djinn_requests_total", "djinn_shadow_total"):
                entry = dump["metrics"].get(name, {})
                totals[name] = sum(s["value"] for s in entry.get("samples", ()))
            return totals["djinn_requests_total"] == totals["djinn_shadow_total"]

        def reader():
            for _ in range(300):
                snaps = [read_dump_region(buf) for buf in regions]
                live = [s for s in snaps if s is not None]
                if not all(lockstep(s) for s in live):
                    failures.append("torn read: lockstep counters diverged")
                    return
                if live and not lockstep(merge_dumps(live)):
                    failures.append("merge of torn snapshots diverged")
                    return

        writers = [threading.Thread(target=writer, args=(buf, model))
                   for buf, model in zip(regions, ("dig", "pos"))]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in writers + readers:
            t.start()
        for t in readers:
            t.join()
        stop.set()
        for t in writers:
            t.join()
        assert failures == []
        # after the dust settles, both regions hold a consistent final dump
        for buf in regions:
            final = read_dump_region(buf)
            assert final is not None and lockstep(final)


# ---------------------------------------------------------------------- tracing
class TestTracer:
    def test_disabled_tracer_yields_noop_and_records_nothing(self):
        tracer = Tracer()
        assert not tracer.enabled
        with tracer.span("client.infer") as span:
            assert span is NOOP_SPAN
            span.set(model="dig")  # must be inert, not raise
        assert tracer.spans() == []
        assert tracer.add_span("x", 0.0, 1.0, trace_id=1) is NOOP_SPAN

    def test_nesting_parents_via_thread_stack(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
                assert tracer.current() is inner
            assert tracer.current() is outer
        assert tracer.current() is None
        names = {s.name for s in tracer.spans()}
        assert names == {"outer", "inner"}

    def test_explicit_context_joins_wire_trace(self):
        """A span opened with explicit trace/parent IDs (context arriving
        from the wire) joins that trace instead of starting a new one."""
        tracer = Tracer(enabled=True)
        with tracer.span("backend.infer", trace_id=77, parent_id=5) as span:
            assert span.trace_id == 77
            assert span.parent_id == 5
        assert [s.trace_id for s in tracer.spans()] == [77]

    def test_separate_roots_get_distinct_trace_ids(self):
        tracer = Tracer(enabled=True)
        for _ in range(3):
            with tracer.span("root"):
                pass
        ids = tracer.trace_ids()
        assert len(ids) == 3 and len(set(ids)) == 3

    def test_add_span_and_filtering(self):
        tracer = Tracer(enabled=True)
        tracer.add_span("a", 0.0, 1.0, trace_id=1)
        tracer.add_span("b", 0.0, 1.0, trace_id=2)
        assert [s.name for s in tracer.spans(1)] == ["a"]
        assert tracer.trace_ids() == [1, 2]
        tracer.clear()
        assert tracer.spans() == []

    def test_span_timing_uses_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(clock=clock, enabled=True)
        with tracer.span("work"):
            clock.tick(0.25)
        (span,) = tracer.spans()
        assert span.duration_s == pytest.approx(0.25)

    def test_max_spans_bound(self):
        tracer = Tracer(enabled=True, max_spans=3)
        for i in range(10):
            tracer.add_span(f"s{i}", 0.0, 1.0, trace_id=1)
        assert [s.name for s in tracer.spans()] == ["s7", "s8", "s9"]

    def test_new_ids_are_unique_nonzero(self):
        ids = {new_id() for _ in range(1000)}
        assert len(ids) == 1000 and 0 not in ids

    def test_chrome_export(self):
        clock = FakeClock(100.0)
        tracer = Tracer(clock=clock, enabled=True)
        with tracer.span("client.infer", category="client", model="dig"):
            clock.tick(0.002)
        doc = tracer.to_chrome()
        (event,) = doc["traceEvents"]
        assert event["ph"] == "X"
        assert event["name"] == "client.infer"
        assert event["cat"] == "client"
        assert event["dur"] == pytest.approx(2000.0)  # µs
        assert event["args"]["model"] == "dig"
        json.dumps(doc)  # must serialize

    def test_dump_chrome_writes_loadable_json(self, tmp_path):
        tracer = Tracer(enabled=True)
        with tracer.span("x"):
            pass
        path = tmp_path / "trace.json"
        tracer.dump_chrome(str(path))
        assert json.loads(path.read_text())["traceEvents"]


class TestTraceAnalysis:
    def make(self, intervals, trace_id=1):
        tracer = Tracer(enabled=True)
        for i, (start, end) in enumerate(intervals):
            tracer.add_span(f"s{i}", start, end, trace_id=trace_id)
        return tracer.spans(trace_id)

    def test_coverage_full(self):
        assert coverage(self.make([(0.0, 1.0), (0.0, 0.5)])) == pytest.approx(1.0)

    def test_coverage_with_gap(self):
        # [0, 1] and [3, 4] over wall [0, 4] -> 2/4 covered
        assert coverage(self.make([(0.0, 1.0), (3.0, 4.0)])) == pytest.approx(0.5)

    def test_coverage_empty(self):
        assert coverage([]) == 0.0

    def test_format_trace_tree(self):
        tracer = Tracer(clock=FakeClock(), enabled=True)
        with tracer.span("client.infer"):
            tracer.clock.tick(0.001)
            with tracer.span("backend.infer", batch_size=4):
                tracer.clock.tick(0.001)
        text = format_trace(tracer.spans())
        lines = text.splitlines()
        assert lines[0].startswith("client.infer")
        assert lines[1].startswith("  backend.infer")
        assert "batch_size=4" in lines[1]

    def test_log_event_format(self, caplog):
        logger = logging.getLogger("repro.test.obs")
        with caplog.at_level(logging.INFO, logger=logger.name):
            log_event(logger, "backend.mark_down",
                      level=logging.WARNING, backend="127.0.0.1:1", failures=3)
        (record,) = caplog.records
        assert record.levelno == logging.WARNING
        assert record.getMessage() == \
            "event=backend.mark_down backend=127.0.0.1:1 failures=3"


# ------------------------------------------------------------------- profiling
class TestLayerTimer:
    class _FakeLayer:
        def __init__(self, name, type_name="Fake"):
            self.name = name
            self.type_name = type_name

    def test_exact_sums_with_fake_clock(self):
        clock = FakeClock()
        timer = LayerTimer(clock=clock)
        for name, dt in (("conv1", 0.010), ("relu1", 0.001), ("fc", 0.004)):
            layer = self._FakeLayer(name)
            timer.begin(layer)
            clock.tick(dt)
            timer.end(layer)
        assert len(timer) == 3
        assert timer.total_s() == pytest.approx(0.015)
        breakdown = {name: (dur, frac)
                     for name, _type, dur, frac in timer.breakdown()}
        assert breakdown["conv1"] == (pytest.approx(0.010), pytest.approx(2 / 3))
        assert "conv1" in timer.format()

    def test_mismatched_end_raises(self):
        timer = LayerTimer()
        with pytest.raises(RuntimeError):
            timer.end(self._FakeLayer("never_begun"))

    def test_emit_spans(self):
        clock = FakeClock()
        timer = LayerTimer(clock=clock)
        layer = self._FakeLayer("l1", "InnerProduct")
        timer.begin(layer)
        clock.tick(0.002)
        timer.end(layer)
        tracer = Tracer(enabled=True)
        timer.emit_spans(tracer, trace_id=9, parent_id=3)
        (span,) = tracer.spans(9)
        assert span.name == "layer.l1"
        assert span.parent_id == 3
        assert span.duration_s == pytest.approx(0.002)
        assert span.attrs["layer_type"] == "InnerProduct"

    def test_reset(self):
        timer = LayerTimer(clock=FakeClock())
        layer = self._FakeLayer("x")
        timer.begin(layer)
        timer.end(layer)
        timer.reset()
        assert len(timer) == 0 and timer.total_s() == 0.0

    def test_layer_times_sum_close_to_forward_wall_time(self):
        """On a real Net, per-layer durations must account for (almost all
        of) the forward pass — the invariant behind the Fig-4 breakdown."""
        import time

        from repro.models import build_net

        net = build_net("dig").materialize(seed=0)
        x = np.random.default_rng(0).normal(size=(8,) + net.input_shape)
        net.forward(x)  # warm-up
        timer = LayerTimer()
        start = time.monotonic()
        net.forward(x, timer=timer)
        wall = time.monotonic() - start
        assert len(timer) == len(net.layers)
        # per-layer sums sit inside the wall time, and cover most of it
        assert timer.total_s() <= wall * 1.01
        assert timer.total_s() >= wall * 0.5

    def test_untimed_forward_unchanged(self):
        from repro.models import build_net

        net = build_net("dig").materialize(seed=0)
        x = np.random.default_rng(0).normal(size=(4,) + net.input_shape)
        np.testing.assert_array_equal(net.forward(x),
                                      net.forward(x, timer=LayerTimer()))


# ------------------------------------------------------------------ end to end
class TestServingIntegration:
    """One traced request through client -> gateway -> backend yields a
    single trace accounting for (nearly) all of the client's wall time."""

    REQUIRED = {"client.infer", "gateway.infer", "gateway.queue",
                "gateway.backend", "backend.infer", "backend.queue",
                "batch.assemble", "net.forward", "backend.respond"}

    @pytest.fixture
    def registry(self):
        from repro.core import ModelRegistry
        from repro.models import senna

        reg = ModelRegistry()
        reg.register_spec("pos", senna("pos"), seed=0)
        return reg

    def test_single_trace_covers_request(self, registry):
        from repro.core import BatchPolicy, DjinnClient, DjinnServer
        from repro.gateway import GatewayServer

        tracer = Tracer(enabled=True)
        server = DjinnServer(
            registry, port=0,
            batching=BatchPolicy(max_batch=4, timeout_ms=1.0),
            profile_layers=True, tracer=tracer)
        server.start()
        # pin the queue-path trace shape (backend.queue, batch.assemble):
        # the batch-1 fast path would legitimately skip both on an idle model
        server._executor._fast_off.add("pos")
        try:
            gateway = GatewayServer([server.address], tracer=tracer)
            gateway.start()
            try:
                with DjinnClient(*gateway.address, tracer=tracer) as cli:
                    out = cli.infer("pos", np.zeros((2, 300), np.float32))
            finally:
                gateway.stop()
        finally:
            server.stop()
        assert out.shape[0] == 2

        ids = tracer.trace_ids()
        assert len(ids) == 1  # one request, one trace
        spans = tracer.spans(ids[0])
        names = {s.name for s in spans}
        assert self.REQUIRED <= names
        assert any(n.startswith("layer.") for n in names)
        # the outer client span is the root and brackets everything
        roots = [s for s in spans
                 if s.name == "client.infer" and s.parent_id == 0]
        assert len(roots) == 1
        assert coverage(spans) >= 0.95
        # every span belongs to the same trace and closed cleanly
        assert all(s.trace_id == ids[0] and s.end_s is not None for s in spans)

    def test_tracing_disabled_adds_no_spans_and_serves_fine(self, registry):
        from repro.core import DjinnClient, DjinnServer
        from repro.gateway import GatewayServer

        tracer = Tracer()  # disabled
        server = DjinnServer(registry, port=0, tracer=tracer)
        server.start()
        try:
            gateway = GatewayServer([server.address], tracer=tracer)
            gateway.start()
            try:
                with DjinnClient(*gateway.address, tracer=tracer) as cli:
                    cli.infer("pos", np.zeros((1, 300), np.float32))
            finally:
                gateway.stop()
        finally:
            server.stop()
        assert tracer.spans() == []

    def test_server_metrics_endpoint(self, registry):
        from repro.core import DjinnClient, DjinnServer

        server = DjinnServer(registry, port=0)
        server.start()
        try:
            with DjinnClient(*server.address) as cli:
                cli.infer("pos", np.zeros((3, 300), np.float32))
                with pytest.raises(Exception):
                    cli.infer("nope", np.zeros((1, 300), np.float32))
                dump = cli.metrics()
                text = cli.metrics_text()
        finally:
            server.stop()
        (sample,) = dump["metrics"]["djinn_requests_total"]["samples"]
        assert sample == {"labels": {"model": "pos"}, "value": 1.0}
        (errors,) = dump["metrics"]["djinn_errors_total"]["samples"]
        assert errors["labels"] == {"model": "nope", "reason": "unknown_model"}
        parsed = parse_exposition(text)
        assert parsed["djinn_inputs_total"][(("model", "pos"),)] == 3.0
        inf_key = (("model", "pos"), ("le", "+Inf"))
        assert parsed["djinn_request_latency_seconds_bucket"][inf_key] == 1.0
