"""Unit and behaviour tests for the MPS concurrency simulator (Figs 8/9)."""

import pytest

from repro.gpusim import app_model
from repro.gpusim.mps import Segment, mps_sweep, service_segments, simulate_concurrent


def toy_segments(idle_us=10.0, work_us=100.0, demand=0.25):
    return [
        Segment("idle", idle_us * 1e-6),
        Segment("gpu", work_us * 1e-6, demand),
        Segment("idle", idle_us * 1e-6),
    ]


class TestSegment:
    def test_validation(self):
        with pytest.raises(ValueError):
            Segment("cpu", 1.0)
        with pytest.raises(ValueError):
            Segment("idle", -1.0)


class TestFluidModel:
    def test_single_instance_throughput_is_cycle_rate(self):
        segs = toy_segments()
        result = simulate_concurrent(segs, 1, "mps")
        cycle = sum(s.duration_s for s in segs)
        assert result.qps == pytest.approx(1.0 / cycle, rel=0.02)
        assert result.mean_latency_s == pytest.approx(cycle, rel=0.02)

    def test_mps_scales_until_demand_saturates(self):
        """demand=0.25 -> ~4 instances fit before the device saturates."""
        segs = toy_segments(demand=0.25)
        base = simulate_concurrent(segs, 1, "mps").qps
        four = simulate_concurrent(segs, 4, "mps").qps
        sixteen = simulate_concurrent(segs, 16, "mps").qps
        assert four == pytest.approx(4 * base, rel=0.05)
        assert sixteen < 6 * base  # saturated well below 16x

    def test_exclusive_throughput_flat(self):
        segs = toy_segments(demand=0.25)
        base = simulate_concurrent(segs, 1, "exclusive").qps
        eight = simulate_concurrent(segs, 8, "exclusive").qps
        assert eight == pytest.approx(base, rel=0.10)

    def test_exclusive_latency_grows_with_instances(self):
        segs = toy_segments()
        l1 = simulate_concurrent(segs, 1, "exclusive").mean_latency_s
        l8 = simulate_concurrent(segs, 8, "exclusive").mean_latency_s
        assert l8 > 5 * l1

    def test_mps_latency_below_exclusive_when_underutilized(self):
        segs = toy_segments(demand=0.2)
        mps = simulate_concurrent(segs, 4, "mps").mean_latency_s
        excl = simulate_concurrent(segs, 4, "exclusive").mean_latency_s
        assert mps < excl

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            simulate_concurrent(toy_segments(), 2, "timeslice")
        with pytest.raises(ValueError):
            simulate_concurrent(toy_segments(), 0, "mps")

    def test_idle_only_workload_scales_perfectly(self):
        segs = [Segment("idle", 1e-4)]
        base = simulate_concurrent(segs, 1, "mps").qps
        eight = simulate_concurrent(segs, 8, "mps").qps
        assert eight == pytest.approx(8 * base, rel=0.02)


class TestServiceSegments:
    def test_alternates_transfers_gaps_and_kernels(self):
        segs = service_segments(app_model("pos"))
        kinds = [s.kind for s in segs]
        assert kinds[0] == "idle" and kinds[-1] == "idle"
        assert "gpu" in kinds
        # every gpu segment is preceded by its launch gap
        for i, seg in enumerate(segs):
            if seg.kind == "gpu":
                assert segs[i - 1].kind == "idle"

    def test_gpu_time_matches_profile_busy_time(self):
        model = app_model("asr")
        segs = service_segments(model)
        gpu_total = sum(s.duration_s for s in segs if s.kind == "gpu")
        assert gpu_total == pytest.approx(model.gpu_profile(model.best_batch).busy_s, rel=1e-6)


class TestPaperClaims:
    """Paper §5.2: throughput rises with concurrent services and plateaus;
    MPS beats time-sharing; latency is small below 4 instances and the
    MPS latency advantage reaches multiples of the time-shared case."""

    @pytest.fixture(scope="class")
    def sweeps(self):
        return {app: mps_sweep(app_model(app), (1, 2, 4, 8, 16))
                for app in ("imc", "dig", "asr", "pos")}

    def test_throughput_monotone_then_plateau(self, sweeps):
        for app, (mps, _) in sweeps.items():
            qps = [r.qps for r in mps]
            assert all(b >= a * 0.99 for a, b in zip(qps, qps[1:])), app
            assert qps[4] < qps[2] * 1.5, app  # plateau beyond k=4-8

    def test_mps_beats_exclusive(self, sweeps):
        for app, (mps, excl) in sweeps.items():
            assert mps[2].qps > excl[2].qps, app  # at 4 instances

    def test_low_occupancy_apps_gain_most(self, sweeps):
        gain = {app: pair[0][2].qps / pair[0][0].qps for app, pair in sweeps.items()}
        assert gain["dig"] > gain["asr"]
        assert gain["pos"] > gain["asr"]
        assert gain["dig"] > 2.0      # paper: "up to 6x" for the best case
        assert gain["asr"] < 1.5      # already near-saturated

    def test_mps_latency_advantage_at_high_concurrency(self, sweeps):
        ratios = {app: excl[3].mean_latency_s / mps[3].mean_latency_s
                  for app, (mps, excl) in sweeps.items()}
        assert all(r > 1.05 for r in ratios.values()), ratios
        assert max(ratios.values()) > 2.0   # paper: "up to 3x" lower with MPS

    def test_latency_modest_below_4_instances(self, sweeps):
        for app, (mps, _) in sweeps.items():
            assert mps[2].mean_latency_s < 4 * mps[0].mean_latency_s, app

    def test_latency_at_4_mps_below_cpu_single_query(self, sweeps):
        # paper: "latency achieved using 4 concurrent DNN services on the
        # GPU is smaller than the single query service time on the CPU"
        for app in ("imc", "dig", "asr"):
            mps, _ = sweeps[app]
            cpu = app_model(app).cpu_query_time()
            assert mps[2].mean_latency_s < cpu, app
