"""End-to-end tests for server-side app serving (protocol v5 APP frames).

Covers the whole new request path: the server's APP_REQUEST handling
(inline and batched), the executor's ``submit_app`` staged pipeline, the
batch-1 fast path, the proc pool's in-worker raw preprocess (FLAG_RAW),
and the gateway relaying APP frames with its usual machinery.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import (
    BatchPolicy,
    DjinnClient,
    DjinnServer,
    DjinnServiceError,
    ModelRegistry,
    ProcPoolExecutor,
)
from repro.core.batching import BatchingExecutor
from repro.gateway import ClusterLauncher, GatewayServer, RetryPolicy
from repro.models import lenet5, senna
from repro.obs import MetricsRegistry
from repro.tonic import (
    DigApp,
    PosApp,
    Vocabulary,
    WindowFeaturizer,
    digit_dataset,
    generate_corpus,
)


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register_spec("dig", lenet5(), seed=0)
    reg.register_spec("pos", senna("pos"), seed=1)
    return reg


@pytest.fixture(scope="module")
def dig_raw():
    images, _ = digit_dataset(4, seed=11)
    return images  # (4, 1, 28, 28) float32 in [0, 1]


def _local_answer(registry, raw):
    """The reference result: the app's own kernels around a local forward."""
    app = DigApp(backend=None)
    inputs = app.preprocess(raw)
    return app.postprocess(registry.get("dig").forward(inputs), raw)


# ------------------------------------------------------------------- server
class TestServerAppPath:
    @pytest.fixture
    def client(self, registry):
        with DjinnServer(registry) as srv:
            with DjinnClient(*srv.address) as cli:
                yield cli

    def test_float_payload_matches_local_pipeline(self, client, registry,
                                                  dig_raw):
        raw = dig_raw[0]
        assert client.infer_app("dig", raw) == _local_answer(registry, raw)

    def test_u8_payload_decodes_as_pixels(self, client, registry, dig_raw):
        """uint8 pixels on the wire (4x smaller) decode to float/255."""
        raw_u8 = (dig_raw[1] * 255).astype(np.uint8)
        raw = raw_u8.astype(np.float32) / np.float32(255.0)
        assert client.infer_app("dig", raw_u8) == _local_answer(registry, raw)

    def test_multi_image_query(self, client, registry, dig_raw):
        """One APP query carrying several images: one answer per image."""
        result = client.infer_app("dig", dig_raw)
        assert result == _local_answer(registry, dig_raw)
        assert len(result) == len(dig_raw)

    def test_unknown_app_is_typed_error(self, client):
        with pytest.raises(DjinnServiceError, match="no serving app"):
            client.infer_app("nope", np.zeros((1, 28, 28), np.float32))

    def test_nlp_has_no_default_app(self, client):
        """NLP taggers need trained featurizer state, so no default app."""
        with pytest.raises(DjinnServiceError, match="no serving app"):
            client.infer_app("pos", "some words here")

    def test_bad_payload_is_typed_and_connection_survives(self, client,
                                                          registry, dig_raw):
        with pytest.raises(DjinnServiceError, match="28, 28"):
            client.infer_app("dig", np.zeros((1, 30, 30), np.float32))
        raw = dig_raw[2]
        assert client.infer_app("dig", raw) == _local_answer(registry, raw)

    def test_stats_count_app_requests(self, registry, dig_raw):
        with DjinnServer(registry) as srv:
            with DjinnClient(*srv.address) as cli:
                cli.infer_app("dig", dig_raw[0])
                cli.infer_app("dig", dig_raw[1])
                assert cli.stats()["dig"]["requests"] == 2.0

    def test_custom_text_app(self, registry):
        """An explicit ``apps`` entry serves KIND_TEXT token payloads."""
        corpus = generate_corpus(16, seed=3)
        vocab = Vocabulary(w for s in corpus for w in s.words)
        pos = PosApp(None, WindowFeaturizer(vocab))
        words = corpus[0].words
        expected = pos.postprocess(
            registry.get("pos").forward(pos.preprocess(words)), words)
        with DjinnServer(registry, apps={"pos": pos}) as srv:
            with DjinnClient(*srv.address) as cli:
                assert cli.infer_app("pos", " ".join(words)) == expected


class TestBatchedServerAppPath:
    def test_concurrent_app_requests_all_correct(self, registry, dig_raw):
        """Coalesced raw requests each get their own (correct) answer."""
        policy = BatchPolicy(max_batch=8, timeout_ms=5.0)
        results = {}
        with DjinnServer(registry, batching=policy) as srv:
            def worker(idx):
                with DjinnClient(*srv.address) as cli:
                    results[idx] = cli.infer_app("dig", dig_raw[idx])

            threads = [threading.Thread(target=worker, args=(i,))
                       for i in range(len(dig_raw))]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        for i in range(len(dig_raw)):
            assert results[i] == _local_answer(registry, dig_raw[i])

    def test_app_and_tensor_traffic_coexist(self, registry, dig_raw, rng):
        policy = BatchPolicy(max_batch=8, timeout_ms=2.0)
        x = rng.normal(size=(2, 1, 32, 32)).astype(np.float32)
        with DjinnServer(registry, batching=policy) as srv:
            with DjinnClient(*srv.address) as cli:
                np.testing.assert_allclose(
                    cli.infer("dig", x), registry.get("dig").forward(x),
                    rtol=1e-5)
                raw = dig_raw[0]
                assert cli.infer_app("dig", raw) == _local_answer(registry,
                                                                  raw)


# ---------------------------------------------------------------- fast path
class TestBatch1FastPath:
    @pytest.fixture
    def executor(self, registry):
        ex = BatchingExecutor(registry, BatchPolicy(max_batch=8,
                                                    timeout_ms=2.0),
                              metrics=MetricsRegistry())
        yield ex
        ex.close()

    def _hits(self, executor, model="dig"):
        return executor._fast_hits.labels(model=model).value

    def test_idle_submit_takes_fast_path(self, executor, registry, rng):
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        before = self._hits(executor)
        with executor.submit_lease("dig", x) as lease:
            np.testing.assert_allclose(
                lease.outputs, registry.get("dig").forward(x), rtol=1e-5)
        assert self._hits(executor) == before + 1

    def test_app_submit_takes_fast_path(self, executor, registry, dig_raw):
        raw = dig_raw[0]
        before = self._hits(executor)
        result = executor.submit_app("dig", DigApp(backend=None), raw)
        assert result == _local_answer(registry, raw)
        assert self._hits(executor) == before + 1

    def test_kill_switch_forces_queue_path(self, executor, registry, rng):
        executor._fast_off.add("dig")
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        before = self._hits(executor)
        with executor.submit_lease("dig", x) as lease:
            np.testing.assert_allclose(
                lease.outputs, registry.get("dig").forward(x), rtol=1e-5)
        assert self._hits(executor) == before  # no fast hit: slot ring path

    def test_oversize_batch_misses_fast_path(self, executor, registry, rng):
        x = rng.normal(size=(9, 1, 32, 32)).astype(np.float32)  # > max_batch
        before = self._hits(executor)
        with executor.submit_lease("dig", x) as lease:
            np.testing.assert_allclose(
                lease.outputs, registry.get("dig").forward(x), rtol=1e-5)
        assert self._hits(executor) == before

    def test_service_floor_disables_fast_path(self, registry, rng):
        ex = BatchingExecutor(registry, BatchPolicy(max_batch=4,
                                                    timeout_ms=1.0),
                              service_floor_s=0.001,
                              metrics=MetricsRegistry())
        try:
            x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
            with ex.submit_lease("dig", x) as lease:
                assert lease.outputs.shape == (1, 10)
            assert ex._fast_hits.labels(model="dig").value == 0
        finally:
            ex.close()

    def test_fast_path_result_is_read_only(self, executor, rng):
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        with executor.submit_lease("dig", x) as lease:
            with pytest.raises(ValueError):
                lease.outputs[0, 0] = 1.0


# ------------------------------------------------------------- proc pool raw
class TestPoolRawDispatch:
    @pytest.fixture(scope="class")
    def pool_registry(self):
        reg = ModelRegistry()
        reg.register_spec("dig", lenet5(), seed=0)
        reg.register_spec("pos", senna("pos"), seed=1)
        yield reg
        reg.close_shm()

    @pytest.fixture(scope="class")
    def pool(self, pool_registry):
        executor = ProcPoolExecutor(pool_registry, workers=1, max_batch=8)
        yield executor
        executor.close()

    def test_raw_item_shape_exposed(self, pool):
        assert pool.raw_item_shape("dig") == (1, 28, 28)
        assert pool.raw_item_shape("pos") is None

    def test_worker_preprocesses_raw_parts(self, pool, pool_registry,
                                           dig_raw):
        """FLAG_RAW: raw pixels go into the slot; the worker runs the app's
        preprocess there, and the forward matches the in-process pipeline
        exactly."""
        app = DigApp(backend=None)
        expected = pool_registry.get("dig").forward(app.preprocess(dig_raw))
        lease = pool.submit_parts("dig", [dig_raw], raw=True)
        try:
            np.testing.assert_array_equal(lease.outputs, expected)
        finally:
            lease.release()

    def test_raw_dispatch_needs_raw_shape(self, pool, rng):
        with pytest.raises(ValueError, match="raw"):
            pool.submit_parts("pos", [rng.normal(size=(1, 300))], raw=True)


# ---------------------------------------------------------------- gateway
class TestGatewayAppForwarding:
    @pytest.fixture(scope="class")
    def fleet(self, registry):
        with ClusterLauncher(registry, backends=2) as cluster:
            gateway = GatewayServer(
                cluster.addresses, policy="round_robin",
                retry=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                                  max_delay_s=0.05),
                health_interval_s=3600.0)
            with gateway:
                yield cluster, gateway

    def test_app_request_relayed(self, fleet, registry, dig_raw):
        _, gateway = fleet
        raw = dig_raw[0]
        with DjinnClient(*gateway.address) as cli:
            assert cli.infer_app("dig", raw) == _local_answer(registry, raw)

    def test_u8_payload_relayed(self, fleet, registry, dig_raw):
        _, gateway = fleet
        raw_u8 = (dig_raw[1] * 255).astype(np.uint8)
        raw = raw_u8.astype(np.float32) / np.float32(255.0)
        with DjinnClient(*gateway.address) as cli:
            assert cli.infer_app("dig", raw_u8) == _local_answer(registry,
                                                                 raw)

    def test_unknown_app_error_passes_through(self, fleet):
        _, gateway = fleet
        with DjinnClient(*gateway.address) as cli:
            with pytest.raises(DjinnServiceError, match="no serving app"):
                cli.infer_app("nope", np.zeros((1, 28, 28), np.float32))

    def test_app_load_spreads_across_backends(self, fleet, dig_raw):
        cluster, gateway = fleet
        with DjinnClient(*gateway.address) as cli:
            for _ in range(4):
                cli.infer_app("dig", dig_raw[0])
        served = [srv.stats.requests("dig") for srv in cluster.servers]
        assert sum(served) >= 4  # every request landed on a backend
        assert all(count > 0 for count in served)  # round robin spread
