"""The paper's abstract, verified end-to-end against the reproduction.

Each test quotes one headline sentence and checks the modeled system
reproduces it (within the documented first-order tolerances; EXPERIMENTS.md
records exact paper-vs-measured values).
"""

import pytest

from repro.gpusim import GpuServerModel, app_model
from repro.gpusim.mps import service_segments, simulate_concurrent
from repro.gpusim.multigpu import MPS_INSTANCES
from repro.models import APPLICATIONS
from repro.wsc import MIXED, NLP, tco_sweep


def optimized_speedup(app: str) -> float:
    """Batching (Table 3) + 4 MPS instances vs one Xeon core (Fig 10)."""
    model = app_model(app)
    result = simulate_concurrent(service_segments(model), MPS_INSTANCES, "mps")
    qps = result.qps * model.best_batch
    return qps * model.cpu_dnn_time()


class TestAbstract:
    def test_120x_throughput_for_all_but_facial_recognition(self):
        """'We improve DNN throughput by over 120x for all but one
        application (40x for Facial Recognition) on an NVIDIA K40 GPU.'"""
        for app in APPLICATIONS:
            speedup = optimized_speedup(app)
            if app == "face":
                assert 25 < speedup < 80, speedup    # paper: 40x
            else:
                assert speedup > 100, (app, speedup)  # paper: >120x

    def test_near_linear_scaling_1000x_for_3_apps(self):
        """'On a GPU server composed of 8 NVIDIA K40s, we achieve
        near-linear scaling (around 1000x throughput improvement) for 3 of
        the 7 applications.'"""
        winners = 0
        for app in APPLICATIONS:
            srv = GpuServerModel(app_model(app))
            rel = srv.scale(8).qps / srv.scale(1).qps
            total = srv.speedup_vs_cpu_core(8)
            if rel > 7.0 and total > 700:
                winners += 1
        assert winners >= 3

    def test_nlp_bandwidth_constrained(self):
        """'We identify natural language processing workloads as being
        bandwidth constrained.'"""
        for app in ("pos", "chk", "ner"):
            assert GpuServerModel(app_model(app)).scale(8).link_limited

    def test_bandwidth_fixes_buy_up_to_4_5x(self):
        """'...showing performance improvements of up to 4.5x over
        bandwidth-constrained designs.'"""
        from repro.wsc import future_network_study

        best = max(p.performance for p in future_network_study(NLP))
        assert 3.0 < best < 6.0

    def test_gpu_wscs_improve_tco_over_cpu_only(self):
        """'GPU-enabled WSCs improve total cost of ownership over CPU-only
        designs by 4-20x, depending on the composition of the workload.'

        Our faithful pre/post-retention model lands lower (2.5-9x) — the
        divergence and its cause are analyzed in EXPERIMENTS.md; the
        composition-dependence and the ordering are reproduced.
        """
        mixed = 1.0 / tco_sweep(MIXED, (1.0,))[0].disaggregated
        nlp = 1.0 / tco_sweep(NLP, (1.0,))[0].disaggregated
        assert mixed > 2.5
        assert nlp > 1.5
        assert mixed > nlp  # composition matters, NLP benefits least


class TestSection5Summary:
    def test_batching_plus_mps_lifts_nlp_from_7x_past_100x(self):
        """§5: 'For NLP applications, batching and MPS together improve the
        GPU throughput gain from 7x to over 120x.'"""
        for app in ("pos", "chk", "ner"):
            base = app_model(app).gpu_speedup(1)
            final = optimized_speedup(app)
            assert base < 10
            assert final > 100
            assert final / base > 12

    def test_four_mps_instances_is_the_knee(self):
        """§5.2: 'four MPS concurrent DNN servers on one GPU achieves high
        throughput gain with limited latency impact.'"""
        for app in ("dig", "pos"):
            segments = service_segments(app_model(app))
            k4 = simulate_concurrent(segments, 4, "mps")
            k16 = simulate_concurrent(segments, 16, "mps")
            assert k16.qps < k4.qps * 1.35       # little throughput left past 4
            assert k16.mean_latency_s > 2 * k4.mean_latency_s  # but much worse latency
