"""Model save/load round-trip tests."""

import numpy as np
import pytest

from repro.models import lenet5, senna
from repro.nn import Net, load_net, save_net


class TestRoundTrip:
    def test_forward_identical_after_reload(self, tmp_path, rng):
        net = Net(senna("pos")).materialize(3)
        path = tmp_path / "pos.npz"
        save_net(net, path)
        restored = load_net(path)
        x = rng.normal(size=(4, 300)).astype(np.float32)
        np.testing.assert_array_equal(restored.forward(x), net.forward(x))

    def test_spec_preserved(self, tmp_path):
        net = Net(lenet5()).materialize(0)
        path = tmp_path / "dig.npz"
        save_net(net, path)
        restored = load_net(path)
        assert restored.spec == net.spec
        assert restored.param_count() == net.param_count()

    def test_reloaded_net_is_trainable(self, tmp_path, rng):
        """Weights come back with fresh gradients — training can resume."""
        from repro.nn import SgdSolver

        net = Net(senna("pos", include_softmax=False)).materialize(1)
        path = tmp_path / "t.npz"
        save_net(net, path)
        restored = load_net(path)
        solver = SgdSolver(restored, lr=0.01)
        loss = solver.step(rng.normal(size=(8, 300)).astype(np.float32),
                           rng.integers(0, 45, size=8))
        assert np.isfinite(loss)

    def test_reloaded_net_registers_in_djinn(self, tmp_path, rng):
        from repro.core import ModelRegistry

        net = Net(lenet5()).materialize(0)
        path = tmp_path / "dig.npz"
        save_net(net, path)
        registry = ModelRegistry()
        registry.register("dig", load_net(path))
        out = registry.get("dig").forward(rng.normal(size=(1, 1, 32, 32)))
        assert out.shape == (1, 10)


class TestGraphRoundTrip:
    def _fork(self):
        from repro.nn import INPUT, GraphLayerSpec, GraphNet, GraphSpec

        spec = GraphSpec("fork", (6,), (
            GraphLayerSpec("InnerProduct", "a", (INPUT,), {"num_output": 4}),
            GraphLayerSpec("InnerProduct", "b", (INPUT,), {"num_output": 3}),
            GraphLayerSpec("Concat", "m", ("a", "b")),
            GraphLayerSpec("InnerProduct", "out", ("m",), {"num_output": 2}),
        ), output="out")
        return GraphNet(spec).materialize(9)

    def test_graphnet_roundtrips(self, tmp_path, rng):
        from repro.nn import GraphNet

        net = self._fork()
        path = tmp_path / "fork.npz"
        save_net(net, path)
        restored = load_net(path)
        assert isinstance(restored, GraphNet)
        x = rng.normal(size=(3, 6)).astype(np.float32)
        np.testing.assert_array_equal(restored.forward(x), net.forward(x))

    def test_graph_spec_survives(self, tmp_path):
        net = self._fork()
        path = tmp_path / "fork.npz"
        save_net(net, path)
        restored = load_net(path)
        assert restored.spec == net.spec


class TestErrors:
    def test_unmaterialized_net_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="no weights"):
            save_net(Net(lenet5()), tmp_path / "x.npz")

    def test_non_model_archive_rejected(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, a=np.zeros(3))
        with pytest.raises(ValueError, match="not a repro.nn model"):
            load_net(path)

    def test_blob_count_mismatch_rejected(self, tmp_path):
        net = Net(senna("pos")).materialize(0)
        path = tmp_path / "pos.npz"
        save_net(net, path)
        # tamper: drop one param array
        with np.load(path) as archive:
            arrays = {k: archive[k] for k in archive.files}
        del arrays["param_0003"]
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="blobs"):
            load_net(path)
