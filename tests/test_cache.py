"""Cross-layer caching battery: correctness pins for the gateway's
content-addressed response cache and the engine's activation layer cache.

The battery is organized around the PR's load-bearing claims:

* **byte identity** — a cache hit is indistinguishable on the wire from
  the miss that populated it, for every golden-zoo model, and
  ``ExecutionPlan.run_from(k)`` reproduces the full execution byte-for-
  byte at every safe split point;
* **budget invariants** — the response cache never retains more bytes
  than its budget, and the layer cache never more entries than its cap,
  with eviction counters that account exactly;
* **collision honesty** — a digest collision (forced via the injectable
  digest hooks) degrades to a counted miss, never a wrong answer;
* **key discipline** — the response key covers exactly the QoS-invariant
  identity of a request: distinct (model, kind, payload) never share a
  key (fuzzed), while QoS-only differences always do;
* **shared duplication semantics** — the seeded near-duplicate planner is
  one source of truth: the load generator and the Tonic dataset surface
  must draw identical duplicate streams per seed.
"""

import socket
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    BatchPolicy,
    DjinnClient,
    DjinnServer,
    ModelRegistry,
)
from repro.core.duplication import (
    apply_duplicates,
    jitter_duplicate,
    plan_duplicates,
)
from repro.core.protocol import (
    Message,
    MessageType,
    encode_message,
    recv_message,
    send_message,
)
from repro.gateway import (
    ClusterLauncher,
    GatewayServer,
    ResponseCache,
    response_key,
)
from repro.models import build_net
from repro.nn import (
    ExecutionPlan,
    GraphLayerSpec,
    GraphNet,
    GraphSpec,
    LayerCache,
    LayerCacheConfig,
    PlanError,
)
from repro.obs import Tracer

from conftest import TEST_SEED

SETTINGS = dict(max_examples=25, deadline=None)

#: every golden-zoo model with an affordable plan width (FACE is 120M
#: params; width 2 keeps its arena and forward cost CI-sized)
ZOO_WIDTHS = {"imc": 2, "dig": 8, "face": 2, "asr": 8, "pos": 8}


@pytest.fixture(scope="module")
def zoo():
    """Materialized golden-zoo nets, built once for the whole battery."""
    return {app: build_net(app, materialize=True) for app in ZOO_WIDTHS}


@pytest.fixture(scope="module")
def zoo_registry(zoo):
    reg = ModelRegistry()
    for app, net in zoo.items():
        reg.register(app, net)
    return reg


def batch_for(net, n, seed=TEST_SEED):
    gen = np.random.default_rng(seed)
    return gen.standard_normal((n,) + tuple(net.input_shape)).astype(np.float32)


# ============================================================ response key
class TestResponseKey:
    def test_distinct_identity_distinct_keys(self):
        x = np.arange(6, dtype=np.float32)
        keys = {
            response_key("dig", 0, x),
            response_key("imc", 0, x),          # model participates
            response_key("dig", 1, x),          # payload kind participates
            response_key("dig", 0, x + 1.0),    # bytes participate
            response_key("dig", 0, x.reshape(2, 3)),  # shape participates
            response_key("dig", 0, x.astype(np.float64)),  # dtype too
            response_key("dig", 0, "hello"),    # text vs tensor tag
        }
        assert len(keys) == 7

    def test_equal_identity_equal_keys(self):
        x = np.arange(12, dtype=np.float32).reshape(3, 4)
        assert response_key("dig", 0, x) == response_key("dig", 0, x.copy())
        assert response_key("dig", 2, "abc") == response_key("dig", 2, "abc")

    @settings(**SETTINGS)
    @given(
        model_a=st.text(max_size=8),
        model_b=st.text(max_size=8),
        kind_a=st.integers(0, 255),
        kind_b=st.integers(0, 255),
        data_a=st.binary(max_size=48),
        data_b=st.binary(max_size=48),
    )
    def test_fuzz_no_cross_identity_collisions(self, model_a, model_b,
                                               kind_a, kind_b,
                                               data_a, data_b):
        """Distinct (model, kind, bytes) identities never share a key."""
        key_a = response_key(model_a, kind_a,
                             np.frombuffer(data_a, dtype=np.uint8))
        key_b = response_key(model_b, kind_b,
                             np.frombuffer(data_b, dtype=np.uint8))
        same = (model_a, kind_a, data_a) == (model_b, kind_b, data_b)
        assert (key_a == key_b) == same

    def test_length_prefixing_blocks_field_slides(self):
        """Bytes migrating between fields must change the key (the
        structural-collision shape length prefixes exist to prevent)."""
        assert (response_key("ab", 0, "c")
                != response_key("a", 0, "bc"))
        assert (response_key("", 0, "abc")
                != response_key("abc", 0, ""))


# ======================================================== response cache
class TestResponseCacheUnit:
    @staticmethod
    def _tensor(i, floats=8):
        return np.full((floats,), float(i), dtype=np.float32)

    def test_bytes_never_exceed_budget(self):
        budget = 10 * self._tensor(0).nbytes
        cache = ResponseCache(budget)
        evicted_total = 0
        for i in range(50):
            key = response_key("m", 0, self._tensor(i))
            evicted_total += cache.put(key, "m", 0, tensor=self._tensor(i))
            assert cache.bytes <= budget
        stats = cache.stats()
        assert stats["entries"] == 10
        assert stats["evictions"] == evicted_total == 40
        assert stats["bytes"] == cache.bytes <= budget

    def test_oversize_insert_refused_and_counted(self):
        cache = ResponseCache(16)
        evicted = cache.put(b"k", "m", 0,
                            tensor=np.zeros(64, dtype=np.float32))
        assert evicted == 1
        assert len(cache) == 0
        assert cache.stats()["evictions"] == 1
        assert cache.bytes == 0

    def test_lru_recency_decides_eviction(self):
        one = self._tensor(0).nbytes
        cache = ResponseCache(3 * one)
        keys = [response_key("m", 0, self._tensor(i)) for i in range(3)]
        for i, key in enumerate(keys):
            cache.put(key, "m", 0, tensor=self._tensor(i))
        assert cache.get(keys[0], "m", 0) is not None  # refresh entry 0
        cache.put(response_key("m", 0, self._tensor(9)), "m", 0,
                  tensor=self._tensor(9))
        assert cache.get(keys[0], "m", 0) is not None  # survived
        assert cache.get(keys[1], "m", 0) is None      # LRU victim

    def test_digest_collision_refused_not_cross_served(self):
        cache = ResponseCache(1 << 20)
        cache.put(b"same-digest", "dig", 0, tensor=self._tensor(1))
        # same key arriving under a different identity must not be served
        assert cache.get(b"same-digest", "imc", 0) is None
        assert cache.get(b"same-digest", "dig", 3) is None
        stats = cache.stats()
        assert stats["collisions"] == 2
        assert stats["misses"] == 2
        # the honest identity still hits
        entry = cache.get(b"same-digest", "dig", 0)
        assert entry is not None
        np.testing.assert_array_equal(entry.tensor, self._tensor(1))

    def test_concurrent_probe_insert_stays_invariant(self):
        one = self._tensor(0).nbytes
        budget = 8 * one
        cache = ResponseCache(budget)
        probes_per_thread, threads_n = 200, 8
        errors = []

        def worker(tid):
            try:
                for i in range(probes_per_thread):
                    which = (tid * 3 + i) % 16
                    key = response_key("m", 0, self._tensor(which))
                    entry = cache.get(key, "m", 0)
                    if entry is None:
                        cache.put(key, "m", 0, tensor=self._tensor(which))
                    else:
                        np.testing.assert_array_equal(
                            entry.tensor, self._tensor(which))
                    assert cache.bytes <= budget
            except Exception as exc:  # surface across the thread boundary
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == probes_per_thread * threads_n
        assert stats["bytes"] <= budget
        assert stats["entries"] <= 8


# ==================================================== gateway end to end
class TestGatewayCache:
    @pytest.fixture()
    def fleet(self, zoo_registry):
        with ClusterLauncher(zoo_registry, backends=1) as cluster:
            gateway = GatewayServer(cluster.addresses, cache_mb=32.0,
                                    health_interval_s=30.0)
            gateway.start()
            try:
                yield gateway
            finally:
                gateway.stop()

    def test_hit_byte_identical_per_zoo_model(self, fleet, zoo):
        """For every golden-zoo model: the cached answer is byte-equal to
        the miss that populated it, and the hit/miss counters move."""
        with DjinnClient(*fleet.address) as cli:
            for app, net in zoo.items():
                x = batch_for(net, 1)
                before = fleet.cache.stats()
                miss = cli.infer(app, x)
                hit = cli.infer(app, x)
                after = fleet.cache.stats()
                assert miss.tobytes() == hit.tobytes(), app
                assert after["misses"] == before["misses"] + 1, app
                assert after["hits"] == before["hits"] + 1, app

    def test_wire_frames_byte_identical(self, fleet, zoo):
        """Raw frames: hit and miss responses encode to identical bytes."""
        x = batch_for(zoo["dig"], 2)
        frames = []
        for _ in range(2):
            with socket.create_connection(fleet.address) as sock:
                send_message(sock, Message(MessageType.INFER_REQUEST,
                                           name="dig", tensor=x))
                frames.append(encode_message(recv_message(sock)))
        assert frames[0] == frames[1]

    def test_qos_only_differences_share_an_entry(self, fleet, zoo):
        """Deadline/priority/tenant are not part of the key: the same
        payload under different QoS must hit the same entry."""
        x = batch_for(zoo["pos"], 1, seed=TEST_SEED + 1)
        with DjinnClient(*fleet.address) as cli:
            base = cli.infer("pos", x)
            before = fleet.cache.stats()
            variants = [
                dict(deadline_ms=2500.0),
                dict(priority=7),
                dict(tenant="other-tenant"),
                dict(deadline_ms=2500.0, priority=-3, tenant="third"),
            ]
            for qos in variants:
                out = cli.infer("pos", x, **qos)
                assert out.tobytes() == base.tobytes()
        after = fleet.cache.stats()
        assert after["hits"] == before["hits"] + len(variants)
        assert after["misses"] == before["misses"]

    def test_cache_metrics_exported(self, fleet, zoo):
        with DjinnClient(*fleet.address) as cli:
            x = batch_for(zoo["dig"], 1, seed=TEST_SEED + 2)
            cli.infer("dig", x)
            cli.infer("dig", x)
        dump = fleet.metrics.dump()["metrics"]
        assert "gateway_cache_hits_total" in dump
        assert "gateway_cache_misses_total" in dump
        assert "gateway_cache_evictions_total" in dump
        assert "gateway_cache_bytes" in dump

    def test_cache_off_exports_no_cache_surface(self, zoo_registry, zoo):
        """Disabled cache: no cache metric families, no gateway.cache
        span — the pre-PR observability surface, unchanged."""
        tracer = Tracer(enabled=True)
        with ClusterLauncher(zoo_registry, backends=1) as cluster:
            gateway = GatewayServer(cluster.addresses, tracer=tracer,
                                    health_interval_s=30.0)
            gateway.start()
            try:
                with DjinnClient(*gateway.address, tracer=tracer) as cli:
                    x = batch_for(zoo["pos"], 1)
                    cli.infer("pos", x)
                    cli.infer("pos", x)
            finally:
                gateway.stop()
        assert gateway.cache is None
        dump = gateway.metrics.dump()["metrics"]
        assert not any(name.startswith("gateway_cache") for name in dump)
        assert "gateway.cache" not in {s.name for s in tracer.spans()}

    def test_hit_and_miss_emit_gateway_cache_span(self, zoo_registry, zoo):
        tracer = Tracer(enabled=True)
        with ClusterLauncher(zoo_registry, backends=1) as cluster:
            gateway = GatewayServer(cluster.addresses, cache_mb=8.0,
                                    tracer=tracer, health_interval_s=30.0)
            gateway.start()
            try:
                with DjinnClient(*gateway.address, tracer=tracer) as cli:
                    x = batch_for(zoo["pos"], 1)
                    cli.infer("pos", x)   # miss
                    cli.infer("pos", x)   # hit
            finally:
                gateway.stop()
        probes = [s for s in tracer.spans() if s.name == "gateway.cache"]
        assert len(probes) == 2
        assert {s.attrs.get("outcome") for s in probes} == {"hit", "miss"}
        assert all(s.end_s is not None for s in probes)


# ===================================================== run_from / splits
class TestRunFromSplits:
    @pytest.mark.parametrize("app", sorted(ZOO_WIDTHS))
    def test_suffix_byte_identical_at_every_safe_split(self, app, zoo):
        """run_from(k, snapshot) == the full execution, byte for byte, at
        every safe split point of every golden-zoo model."""
        net = zoo[app]
        plan = ExecutionPlan(net, ZOO_WIDTHS[app])
        n = 1 if app in ("imc", "face") else 3
        x = batch_for(net, n)
        full = plan.run(x)
        splits = plan.safe_splits()
        assert splits, f"{app} plan unexpectedly has no safe splits"
        for k in splits:
            with plan.lock:
                np.copyto(plan.input_view(n), x)
                plan.execute_range(n, 0, k + 1)
                snap = plan.snapshot(k, n)
                out = plan.run_from(k, snap)
            np.testing.assert_array_equal(out, full, err_msg=f"{app}@{k}")

    def test_fanout_region_is_not_a_safe_split(self):
        """DAG fan-out: while more than one top is live, a single
        activation does not determine the suffix — those splits must be
        excluded, and run_from must demand the full live set."""
        spec = GraphSpec(
            name="fanout",
            input_shape=(6,),
            layers=(
                GraphLayerSpec("InnerProduct", "ip1", ("input",),
                               {"num_output": 6}),
                GraphLayerSpec("ReLU", "act", ("ip1",)),
                GraphLayerSpec("EltwiseSum", "sum", ("ip1", "act")),
                GraphLayerSpec("InnerProduct", "head", ("sum",),
                               {"num_output": 3}),
                GraphLayerSpec("Softmax", "prob", ("head",)),
            ),
            output="prob",
        )
        net = GraphNet(spec).materialize(3)
        plan = ExecutionPlan(net, 4)
        splits = plan.safe_splits()
        # step 1 (relu) keeps ip1 live for the sum: not a safe split
        assert 1 not in splits
        x = batch_for(net, 2)
        full = plan.run(x)
        for k in splits:
            with plan.lock:
                np.copyto(plan.input_view(2), x)
                plan.execute_range(2, 0, k + 1)
                out = plan.run_from(k, plan.snapshot(k, 2))
            np.testing.assert_array_equal(out, full)
        # a bare array at the fan-out point is rejected, not misread
        with plan.lock:
            np.copyto(plan.input_view(2), x)
            plan.execute_range(2, 0, 2)
            with pytest.raises(PlanError):
                plan.run_from(1, np.zeros((2, 6), dtype=np.float32))

    def test_run_from_rejects_wrong_shape_and_tops(self, zoo):
        plan = ExecutionPlan(zoo["pos"], 4)
        k = plan.safe_splits()[0]
        with pytest.raises(PlanError):
            plan.run_from(k, {"no-such-top": np.zeros((1, 4), np.float32)})
        name = plan.live_tops(k)[0]
        good = plan.snapshot(k, 1)  # shapes from a real (if stale) arena
        bad = {name: np.zeros(good[name].shape + (2,), dtype=np.float32)}
        with pytest.raises(PlanError):
            plan.run_from(k, bad)


# ========================================================== layer cache
class TestLayerCacheServe:
    def test_all_miss_serve_matches_uncached_then_hits_byte_equal(self, zoo):
        net = zoo["dig"]
        plan = ExecutionPlan(net, 8)
        cache = LayerCache(plan, max_entries=64)
        x = batch_for(net, 4)
        with plan.lock:
            np.copyto(plan.input_view(4), x)
            first = cache.serve(4)
            first_bytes = first.outputs.tobytes()
        # a cold serve is one full-width pass: byte-equal to the net
        np.testing.assert_array_equal(first.outputs, net.forward(x))
        assert (first.hits, first.misses) == (0, 4)
        with plan.lock:
            np.copyto(plan.input_view(4), x)
            second = cache.serve(4)
            assert second.outputs.tobytes() == first_bytes
        assert (second.hits, second.misses) == (4, 0)
        assert not second.outputs.flags.writeable

    def test_partial_hits_mix_rows_correctly(self, zoo):
        # same batch width on both serves: the exact digest is honest
        # about BLAS width reassociation, so only same-width replays are
        # guaranteed to re-derive the same activation bits
        net = zoo["pos"]
        plan = ExecutionPlan(net, 8)
        cache = LayerCache(plan, max_entries=64)
        warm = batch_for(net, 4)
        with plan.lock:
            np.copyto(plan.input_view(4), warm)
            warmed = cache.serve(4)
        cold = batch_for(net, 2, seed=TEST_SEED + 5)
        mixed = np.concatenate([warm[:1], cold, warm[3:]], axis=0)
        with plan.lock:
            np.copyto(plan.input_view(4), mixed)
            served = cache.serve(4)
        assert (served.hits, served.misses) == (2, 2)
        # hit rows are byte-equal to the serve that inserted them
        assert served.outputs[0].tobytes() == warmed.outputs[0].tobytes()
        assert served.outputs[3].tobytes() == warmed.outputs[3].tobytes()
        # miss rows match the net (the suffix ran at the miss width)
        np.testing.assert_allclose(served.outputs[1:3], net.forward(cold),
                                   rtol=1e-5, atol=1e-6)

    def test_forced_collision_degrades_to_counted_miss(self, zoo):
        """A deliberately constant digest makes every key collide; the
        verified probe must refuse the entry and still answer right."""
        net = zoo["pos"]
        plan = ExecutionPlan(net, 4)
        cache = LayerCache(plan, max_entries=8,
                           digest=lambda data: b"constant")
        a = batch_for(net, 2)
        b = batch_for(net, 2, seed=TEST_SEED + 9)
        with plan.lock:
            np.copyto(plan.input_view(2), a)
            cache.serve(2)
            np.copyto(plan.input_view(2), b)
            served = cache.serve(2)
        assert served.hits == 0
        assert served.collisions >= 1
        assert served.misses == 2
        np.testing.assert_array_equal(served.outputs, net.forward(b))

    def test_entry_cap_and_eviction_counters(self, zoo):
        net = zoo["pos"]
        plan = ExecutionPlan(net, 4)
        cache = LayerCache(plan, max_entries=2)
        for i in range(5):
            x = batch_for(net, 1, seed=TEST_SEED + 20 + i)
            with plan.lock:
                np.copyto(plan.input_view(1), x)
                cache.serve(1)
            assert len(cache) <= 2
        assert cache.stats()["evictions"] == 3

    def test_unsafe_split_and_planless_nets_are_rejected(self, zoo):
        plan = ExecutionPlan(zoo["pos"], 4)
        unsafe = [k for k in range(len(plan._steps))
                  if k not in plan.safe_splits()]
        if unsafe:
            with pytest.raises(PlanError):
                LayerCache(plan, split=unsafe[0])
        with pytest.raises(PlanError):
            LayerCache(plan, split=len(plan._steps) + 3)

    def test_concurrent_probe_insert_thread_safe(self, zoo):
        plan = ExecutionPlan(zoo["pos"], 4)
        cache = LayerCache(plan, max_entries=8)
        acts = [np.full((16,), float(i), dtype=np.float32)
                for i in range(16)]
        outs = [np.full((4,), float(i), dtype=np.float32)
                for i in range(16)]
        probes_per_thread, threads_n = 300, 8
        errors = []

        def worker(tid):
            try:
                for i in range(probes_per_thread):
                    which = (tid + i) % 16
                    key = cache.digest(acts[which])
                    got = cache.probe(key, acts[which])
                    if got is None:
                        cache.insert(key, acts[which], outs[which])
                    else:
                        np.testing.assert_array_equal(got, outs[which])
                    assert len(cache) <= 8
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(t,))
                   for t in range(threads_n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == \
            probes_per_thread * threads_n
        assert stats["entries"] <= 8

    @settings(**SETTINGS)
    @given(
        jitter=st.floats(0.0, 0.02, allow_nan=False),
        tolerance=st.sampled_from([0.0, 0.05, 0.25]),
        seed=st.integers(0, 1000),
    )
    def test_near_duplicates_respect_fidelity_threshold(self, jitter,
                                                        tolerance, seed):
        """Whatever the digest decides for a near-duplicate, fidelity
        stays inside the configured tolerance: a hit's activation
        distance never exceeds it, lossless mode never hits on changed
        bytes, and outputs are either byte-replays or fresh suffixes."""
        net = _near_dup_state["net"]
        plan = _near_dup_state["plan"]
        cache = LayerCache(plan, max_entries=8, tolerance=tolerance)
        base = batch_for(net, 1, seed=TEST_SEED + 77)
        near = jitter_duplicate(base, index=1, seed=seed, jitter=jitter)
        with plan.lock:
            np.copyto(plan.input_view(1), base)
            first = cache.serve(1)
            np.copyto(plan.input_view(1), near)
            second = cache.serve(1)
        assert second.hits + second.misses == 1
        assert second.fidelity_max <= tolerance
        if second.hits:
            # a hit replays the inserted row byte-for-byte
            assert second.outputs.tobytes() == first.outputs.tobytes()
        else:
            np.testing.assert_allclose(second.outputs, net.forward(near),
                                       rtol=1e-5, atol=1e-6)
        if tolerance == 0.0 and jitter > 0.0 and not np.array_equal(
                near, base):
            assert second.hits == 0  # lossless mode never blurs identity


#: hypothesis redraws examples inside one test call, so the expensive
#: plan is built once at import, not per example
_near_dup_state = {}


def _build_near_dup_state():
    net = build_net("pos", materialize=True)
    _near_dup_state["net"] = net
    _near_dup_state["plan"] = ExecutionPlan(net, 2)


_build_near_dup_state()


# ============================================== executor / server wiring
class TestExecutorLayerCache:
    @pytest.fixture()
    def registry(self, zoo):
        reg = ModelRegistry()
        reg.register("pos", zoo["pos"])
        return reg

    def test_served_through_batching_executor_byte_identical(self, registry,
                                                             zoo):
        reference = DjinnServer(registry, port=0,
                                batching=BatchPolicy(max_batch=4,
                                                     timeout_ms=1.0))
        cached = DjinnServer(registry, port=0,
                             batching=BatchPolicy(max_batch=4,
                                                  timeout_ms=1.0),
                             layer_cache=LayerCacheConfig(max_entries=64))
        reference.start()
        cached.start()
        try:
            x = batch_for(zoo["pos"], 2)
            with DjinnClient(*reference.address) as ref_cli, \
                    DjinnClient(*cached.address) as hot_cli:
                want = ref_cli.infer("pos", x)
                cold = hot_cli.infer("pos", x)
                warm = hot_cli.infer("pos", x)
            assert cold.tobytes() == want.tobytes()
            assert warm.tobytes() == want.tobytes()
            dump = cached.metrics.dump()["metrics"]
            # the counter family exists and recorded both outcomes
            events = str(dump["djinn_layer_cache_events_total"])
            assert "hit" in events and "miss" in events
            ref_dump = reference.metrics.dump()["metrics"]
            assert not any(name.startswith("djinn_layer_cache")
                           for name in ref_dump)
        finally:
            cached.stop()
            reference.stop()

    def test_layer_cache_requires_batching(self, registry):
        with pytest.raises(ValueError):
            DjinnServer(registry, port=0,
                        layer_cache=LayerCacheConfig())

    def test_engine_cache_span_emitted_for_traced_requests(self, registry,
                                                           zoo):
        tracer = Tracer(enabled=True)
        server = DjinnServer(registry, port=0,
                             batching=BatchPolicy(max_batch=4,
                                                  timeout_ms=1.0),
                             layer_cache=LayerCacheConfig(),
                             tracer=tracer)
        server.start()
        try:
            with DjinnClient(*server.address, tracer=tracer) as cli:
                x = batch_for(zoo["pos"], 1)
                cli.infer("pos", x)
                cli.infer("pos", x)
        finally:
            server.stop()
        probes = [s for s in tracer.spans() if s.name == "engine.cache"]
        assert probes, "traced cached request must emit an engine.cache span"
        assert all(s.end_s is not None for s in probes)


# ===================================================== shared duplication
class TestDuplicationUnified:
    def test_plan_is_deterministic_and_bounded(self):
        plan = plan_duplicates(64, 0.5, TEST_SEED)
        assert plan == plan_duplicates(64, 0.5, TEST_SEED)
        assert 0 not in plan                     # item 0 never duplicates
        assert all(0 <= src < idx for idx, src in plan.items())
        assert plan_duplicates(64, 0.0, TEST_SEED) == {}
        assert plan_duplicates(1, 1.0, TEST_SEED) == {}
        assert all(idx in plan_duplicates(64, 1.0, TEST_SEED)
                   for idx in range(1, 64))

    def test_loadgen_and_dataset_surfaces_draw_identical_streams(self):
        """Regression pin for the unification: the load generator's
        input_for() composition and the dataset surface's
        apply_duplicates() must produce the same stream per seed."""
        count, dup_frac, seed, jitter = 40, 0.4, TEST_SEED, 0.01
        gen = np.random.default_rng(3)
        items = gen.standard_normal((count, 5)).astype(np.float32)

        # the loadgen composition (repro.core.loadgen.run_open_loop_load)
        dup_of = plan_duplicates(count, dup_frac, seed)

        def input_for(i):
            src = dup_of.get(i)
            if src is None:
                return items[i]
            return jitter_duplicate(items[src], i, seed, jitter)

        loadgen_stream = np.stack([input_for(i) for i in range(count)])
        # the dataset composition (repro.tonic.datasets.with_duplicates)
        dataset_stream = apply_duplicates(items, dup_frac=dup_frac,
                                          seed=seed, jitter=jitter)
        np.testing.assert_array_equal(loadgen_stream, dataset_stream)
        assert dup_of, "chosen (count, dup_frac, seed) must exercise dups"

    def test_zero_jitter_duplicates_are_byte_identical(self):
        gen = np.random.default_rng(4)
        items = gen.standard_normal((32, 3)).astype(np.float32)
        out = apply_duplicates(items, dup_frac=0.6, seed=TEST_SEED,
                               jitter=0.0)
        plan = plan_duplicates(32, 0.6, TEST_SEED)
        assert plan
        for idx, src in plan.items():
            assert out[idx].tobytes() == items[src].tobytes()

    def test_duplicate_sources_are_originals_not_jittered_copies(self):
        """A duplicate of a duplicate replays the pristine item: noise
        must not accumulate along duplication chains."""
        items = np.zeros((48, 4), dtype=np.float32)
        out = apply_duplicates(items, dup_frac=1.0, seed=TEST_SEED,
                               jitter=0.05)
        plan = plan_duplicates(48, 1.0, TEST_SEED)
        for idx, src in plan.items():
            expected = jitter_duplicate(items[src], idx, TEST_SEED, 0.05)
            np.testing.assert_array_equal(out[idx], expected)

    def test_labels_ride_along_with_their_sources(self):
        gen = np.random.default_rng(5)
        items = gen.standard_normal((32, 3)).astype(np.float32)
        labels = np.arange(32, dtype=np.int64)
        out, out_labels = apply_duplicates(items, labels, dup_frac=0.5,
                                           seed=TEST_SEED, jitter=0.0)
        plan = plan_duplicates(32, 0.5, TEST_SEED)
        for idx in range(32):
            assert out_labels[idx] == labels[plan.get(idx, idx)]

    def test_dup_frac_validation_is_shared(self):
        with pytest.raises(ValueError):
            plan_duplicates(8, -0.1, 0)
        with pytest.raises(ValueError):
            plan_duplicates(8, 1.5, 0)
