"""Unit tests for declarative network specs."""

import pytest

from repro.nn import LayerSpec, NetSpec


def toy_spec():
    return NetSpec(
        name="toy",
        input_shape=(4,),
        layers=(
            LayerSpec("InnerProduct", "fc1", {"num_output": 8}),
            LayerSpec("ReLU", "relu1"),
            LayerSpec("InnerProduct", "fc2", {"num_output": 2}),
            LayerSpec("Softmax", "prob"),
        ),
    )


class TestValidation:
    def test_valid_spec_constructs(self):
        assert toy_spec().depth == 4

    def test_unknown_layer_type(self):
        with pytest.raises(ValueError, match="unknown type"):
            NetSpec("bad", (4,), (LayerSpec("Convolution2D", "c"),))

    def test_duplicate_layer_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            NetSpec("bad", (4,), (
                LayerSpec("ReLU", "a"), LayerSpec("ReLU", "a"),
            ))

    def test_empty_layers(self):
        with pytest.raises(ValueError, match="no layers"):
            NetSpec("bad", (4,), ())

    def test_bad_input_shape(self):
        with pytest.raises(ValueError, match="bad input shape"):
            NetSpec("bad", (0,), (LayerSpec("ReLU", "a"),))

    def test_empty_layer_name(self):
        with pytest.raises(ValueError, match="non-empty"):
            NetSpec("bad", (4,), (LayerSpec("ReLU", ""),))


class TestUtilities:
    def test_without_strips_types(self):
        spec = toy_spec().without("Softmax", "ReLU")
        assert [s.type for s in spec.layers] == ["InnerProduct", "InnerProduct"]

    def test_without_preserves_name_and_input(self):
        spec = toy_spec().without("Softmax")
        assert spec.name == "toy" and spec.input_shape == (4,)

    def test_serialization_roundtrip(self):
        spec = toy_spec()
        restored = NetSpec.from_dict(spec.to_dict())
        assert restored == spec

    def test_build_layers_instantiates_in_order(self):
        layers = toy_spec().build_layers()
        assert [l.type_name for l in layers] == ["InnerProduct", "ReLU", "InnerProduct", "Softmax"]
        assert layers[0].num_output == 8

    def test_input_shape_normalized(self):
        import numpy as np
        spec = NetSpec("n", (np.int64(4),), (LayerSpec("ReLU", "a"),))
        assert spec.input_shape == (4,)
        assert type(spec.input_shape[0]) is int
