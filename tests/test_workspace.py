"""Unit tests for static cost accounting (the nn -> gpusim contract)."""

import numpy as np
import pytest

from repro.nn import LayerSpec, Net, NetSpec, analyze
from repro.nn.workspace import input_bytes


def mlp(hidden=16):
    return Net(NetSpec("mlp", (8,), (
        LayerSpec("InnerProduct", "fc1", {"num_output": hidden}),
        LayerSpec("Sigmoid", "sig"),
        LayerSpec("InnerProduct", "fc2", {"num_output": 4}),
        LayerSpec("Softmax", "prob"),
    )))


class TestAnalyze:
    def test_total_flops_scale_linearly_with_batch(self):
        net = mlp()
        one = analyze(net, batch=1).total_flops
        eight = analyze(net, batch=8).total_flops
        assert eight == 8 * one

    def test_param_bytes_do_not_scale_with_batch(self):
        net = mlp()
        assert analyze(net, 1).total_param_bytes == analyze(net, 64).total_param_bytes
        assert analyze(net, 1).total_param_bytes == net.param_bytes()

    def test_gemm_count(self):
        cost = analyze(mlp(), batch=2)
        assert cost.gemm_count == 2

    def test_kernel_count_counts_elementwise_layers_once(self):
        # fc1, sig, fc2, prob -> 4 kernels
        assert analyze(mlp(), 1).kernel_count == 4

    def test_gemm_shapes_carry_batch(self):
        cost = analyze(mlp(), batch=5)
        fc1 = cost.layers[0]
        assert fc1.gemms == ((16, 5, 8),)

    def test_hand_computed_flops(self):
        cost = analyze(mlp(hidden=16), batch=1)
        fc1, sig, fc2, prob = cost.layers
        assert fc1.flops == 2 * 16 * 8 + 16
        assert sig.flops == 16
        assert fc2.flops == 2 * 4 * 16 + 4
        assert prob.flops == 3 * 4

    def test_activation_bytes(self):
        cost = analyze(mlp(), batch=2)
        fc1 = cost.layers[0]
        assert fc1.activation_bytes == (8 + 16) * 4 * 2

    def test_rejects_bad_batch(self):
        with pytest.raises(ValueError):
            analyze(mlp(), batch=0)

    def test_no_materialization_needed(self):
        net = mlp()
        analyze(net, 4)
        assert not net.materialized

    def test_input_bytes(self):
        assert input_bytes(mlp(), batch=3) == 8 * 3 * 4

    def test_conv_gemm_matches_caffe_lowering(self):
        net = Net(NetSpec("c", (3, 8, 8), (
            LayerSpec("Convolution", "conv", {"num_output": 4, "kernel_size": 3, "group": 1}),
        )))
        cost = analyze(net, batch=2)
        # M=num_output, N=out_h*out_w*batch, K=C*k*k
        assert cost.layers[0].gemms == ((4, 36 * 2, 27),)
