"""Unit tests for max/average pooling."""

import numpy as np
import pytest

from repro.nn import check_layer_gradients
from repro.nn.layers import PoolingLayer, ShapeError


def naive_pool(x, k, stride, pad, mode):
    n, c, h, w = x.shape
    fill = -np.inf if mode == "max" else 0.0
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), constant_values=fill)
    out_h = (x.shape[2] - k) // stride + 1
    out_w = (x.shape[3] - k) // stride + 1
    y = np.zeros((n, c, out_h, out_w))
    for i in range(out_h):
        for j in range(out_w):
            window = x[:, :, i * stride : i * stride + k, j * stride : j * stride + k]
            y[:, :, i, j] = window.max(axis=(2, 3)) if mode == "max" else window.mean(axis=(2, 3))
    return y


class TestForward:
    @pytest.mark.parametrize("mode", ["max", "ave"])
    @pytest.mark.parametrize("k,stride,pad", [(2, 2, 0), (3, 2, 0), (3, 1, 1)])
    def test_matches_naive(self, rng, mode, k, stride, pad):
        layer = PoolingLayer("pool", kernel_size=k, stride=stride, pad=pad, mode=mode)
        layer.setup((3, 8, 8))
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        np.testing.assert_allclose(
            layer.forward(x), naive_pool(x, k, stride, pad, mode), rtol=1e-5, atol=1e-6
        )

    def test_default_stride_equals_kernel(self):
        layer = PoolingLayer("pool", kernel_size=2)
        assert layer.setup((4, 8, 8)) == (4, 4, 4)

    def test_alexnet_pool_geometry(self):
        layer = PoolingLayer("pool1", kernel_size=3, stride=2)
        assert layer.setup((96, 55, 55)) == (96, 27, 27)

    def test_rejects_bad_mode(self):
        with pytest.raises(ValueError, match="max.*ave"):
            PoolingLayer("pool", kernel_size=2, mode="avg")

    def test_rejects_vector_input(self):
        layer = PoolingLayer("pool", kernel_size=2)
        with pytest.raises(ShapeError):
            layer.setup((10,))


class TestBackward:
    def test_max_routes_gradient_to_argmax_only(self):
        layer = PoolingLayer("pool", kernel_size=2, mode="max")
        layer.setup((1, 2, 2))
        x = np.array([[[[1.0, 3.0], [2.0, 0.0]]]], dtype=np.float32)
        layer.forward(x, train=True)
        dx = layer.backward(np.array([[[[5.0]]]], dtype=np.float32))
        np.testing.assert_array_equal(dx, [[[[0.0, 5.0], [0.0, 0.0]]]])

    def test_ave_spreads_gradient_uniformly(self):
        layer = PoolingLayer("pool", kernel_size=2, mode="ave")
        layer.setup((1, 2, 2))
        x = np.ones((1, 1, 2, 2), dtype=np.float32)
        layer.forward(x, train=True)
        dx = layer.backward(np.full((1, 1, 1, 1), 4.0, dtype=np.float32))
        np.testing.assert_allclose(dx, np.ones((1, 1, 2, 2)))

    @pytest.mark.parametrize("mode", ["max", "ave"])
    def test_gradients_match_numerical(self, rng, mode):
        layer = PoolingLayer("pool", kernel_size=2, stride=2, mode=mode)
        layer.setup((2, 6, 6))
        # distinct values so the max argmax is stable under the epsilon
        x = rng.permutation(np.arange(2 * 2 * 36, dtype=np.float64)).reshape(2, 2, 6, 6) * 0.1
        errors = check_layer_gradients(layer, x, eps=1e-4)
        assert errors["input"] < 1e-4, errors

    def test_overlapping_max_accumulates(self):
        layer = PoolingLayer("pool", kernel_size=3, stride=1, mode="max")
        layer.setup((1, 3, 3))
        x = np.zeros((1, 1, 3, 3), dtype=np.float32)
        x[0, 0, 1, 1] = 10.0  # the single max for the only window
        layer.forward(x, train=True)
        dx = layer.backward(np.ones((1, 1, 1, 1), dtype=np.float32))
        assert dx[0, 0, 1, 1] == 1.0
