"""Cost-ledger attribution and SLO burn-rate monitoring unit tests.

The ledger tests drive :func:`repro.obs.build_ledger` with hand-built span
trees whose exclusive times are exact by construction, so every assertion
is on a closed-form value — including the adversarial shapes (overlapping
hedge siblings, container residuals, rootless fragments) that a naive
per-span-duration sum gets wrong.
"""

import logging

import pytest

from repro.obs import (
    STAGES,
    BurnRateMonitor,
    Span,
    aggregate_shares,
    build_ledger,
    build_ledgers,
    format_ledger,
)


class FakeClock:
    """Hand-driven monotonic clock for deterministic timing tests."""

    def __init__(self, start=0.0):
        self.now = start

    def __call__(self):
        return self.now


_next_span_id = iter(range(1, 1_000_000))


def make_span(name, start, end, trace_id=1, parent_id=0, span_id=None,
              **attrs):
    span = Span(name, "test", trace_id,
                span_id if span_id is not None else next(_next_span_id),
                parent_id, start)
    span.end_s = end
    span.attrs.update(attrs)
    return span


class TestBuildLedger:
    def test_simple_request_fully_attributed(self):
        spans = [
            make_span("client.infer", 0.0, 10.0, span_id=1, parent_id=999,
                      model="dig"),
            make_span("backend.infer", 1.0, 9.0, span_id=2, parent_id=1),
            make_span("backend.queue", 1.0, 3.0, span_id=3, parent_id=2),
            make_span("net.forward", 3.0, 8.0, span_id=4, parent_id=2),
            make_span("backend.respond", 8.0, 9.0, span_id=5, parent_id=2),
        ]
        ledger = build_ledger(spans)
        assert ledger is not None
        assert ledger.model == "dig"
        assert ledger.wall_s == pytest.approx(10.0)
        # root exclusive = [0,1] + [9,10]; container is fully covered
        assert ledger.stages["client.serialize"] == pytest.approx(2.0)
        assert ledger.stages["backend.queue"] == pytest.approx(2.0)
        assert ledger.stages["net.forward"] == pytest.approx(5.0)
        assert ledger.stages["respond"] == pytest.approx(1.0)
        assert ledger.residual_s == pytest.approx(0.0)
        assert ledger.coverage == pytest.approx(1.0)
        assert ledger.span_count == 5

    def test_container_exclusive_time_is_residual(self):
        # backend.infer's own time (request parse, bookkeeping) must land in
        # the residual, not flatter any stage
        spans = [
            make_span("client.infer", 0.0, 10.0, span_id=1),
            make_span("backend.infer", 1.0, 9.0, span_id=2, parent_id=1),
            make_span("net.forward", 2.0, 8.0, span_id=3, parent_id=2),
        ]
        ledger = build_ledger(spans)
        assert ledger.residual_s == pytest.approx(2.0)  # [1,2] + [8,9]
        assert ledger.coverage == pytest.approx(0.8)

    def test_overlapping_siblings_do_not_double_count(self):
        # hedged duplicate arms overlap in wall time; the sweep charges the
        # union, a per-span sum would charge 4+4=8 out of a 6s union
        spans = [
            make_span("client.infer", 0.0, 10.0, span_id=1),
            make_span("gateway.backend", 2.0, 6.0, span_id=2, parent_id=1),
            make_span("gateway.backend", 4.0, 8.0, span_id=3, parent_id=1),
        ]
        ledger = build_ledger(spans)
        assert ledger.stages["gateway.rpc"] == pytest.approx(6.0)
        assert ledger.stages["client.serialize"] == pytest.approx(4.0)
        total = sum(ledger.stages.values()) + ledger.residual_s
        assert total == pytest.approx(ledger.wall_s)

    def test_layer_spans_subdivide_net_forward(self):
        spans = [
            make_span("client.infer", 0.0, 12.0, span_id=1),
            make_span("net.forward", 1.0, 11.0, span_id=2, parent_id=1),
            make_span("layer.conv1", 1.0, 5.0, span_id=3, parent_id=2),
            make_span("layer.fc", 5.0, 9.0, span_id=4, parent_id=2),
        ]
        ledger = build_ledger(spans)
        # layer.* exclusive time still counts as net.forward at stage level
        assert ledger.stages["net.forward"] == pytest.approx(10.0)
        assert ledger.layers == {"conv1": pytest.approx(4.0),
                                 "fc": pytest.approx(4.0)}
        assert sum(ledger.layers.values()) <= ledger.stages["net.forward"]

    def test_batch_scatter_maps_to_assemble(self):
        spans = [
            make_span("client.infer", 0.0, 10.0, span_id=1),
            make_span("batch.assemble", 1.0, 3.0, span_id=2, parent_id=1),
            make_span("batch.scatter", 6.0, 8.0, span_id=3, parent_id=1),
        ]
        ledger = build_ledger(spans)
        assert ledger.stages["batch.assemble"] == pytest.approx(4.0)

    def test_nested_client_infer_is_gateway_rpc(self):
        # the gateway's pooled hop to a backend opens its own client.infer;
        # its exclusive time is RPC overhead, not end-user serialization
        spans = [
            make_span("client.infer", 0.0, 10.0, span_id=1),
            make_span("client.infer", 2.0, 8.0, span_id=2, parent_id=1),
        ]
        ledger = build_ledger(spans)
        assert ledger.stages["gateway.rpc"] == pytest.approx(6.0)
        assert ledger.stages["client.serialize"] == pytest.approx(4.0)

    def test_prefers_client_infer_root(self):
        # an orphan fragment (parent never recorded) starts earlier, but the
        # client.infer envelope is still the wall-time anchor
        spans = [
            make_span("backend.infer", 0.0, 5.0, span_id=1, parent_id=777),
            make_span("client.infer", 1.0, 9.0, span_id=2, parent_id=888),
        ]
        ledger = build_ledger(spans)
        assert ledger.wall_s == pytest.approx(8.0)

    def test_no_finished_spans_returns_none(self):
        open_span = Span("client.infer", "test", 1, 1, 0, 0.0)  # end_s None
        assert build_ledger([]) is None
        assert build_ledger([open_span]) is None

    def test_model_found_on_child_span(self):
        spans = [
            make_span("client.infer", 0.0, 4.0, span_id=1),
            make_span("net.forward", 1.0, 3.0, span_id=2, parent_id=1,
                      model="pos"),
        ]
        assert build_ledger(spans).model == "pos"

    def test_shares_include_every_stage_and_sum_to_one(self):
        spans = [
            make_span("client.infer", 0.0, 10.0, span_id=1),
            make_span("backend.infer", 1.0, 9.0, span_id=2, parent_id=1),
            make_span("net.forward", 2.0, 8.0, span_id=3, parent_id=2),
        ]
        shares = build_ledger(spans).shares()
        assert set(shares) == set(STAGES) | {"unattributed"}
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["unattributed"] == pytest.approx(0.2)

    def test_to_dict_round_trips_key_fields(self):
        spans = [make_span("client.infer", 0.0, 2.0, span_id=1, model="dig")]
        out = build_ledger(spans).to_dict()
        assert out["trace_id"] == f"{1:016x}"
        assert out["model"] == "dig"
        assert out["wall_s"] == pytest.approx(2.0)
        assert out["coverage"] == pytest.approx(1.0)
        assert set(out["stages_s"]) == set(STAGES)

    def test_build_ledgers_groups_by_trace(self):
        spans = [
            make_span("client.infer", 0.0, 1.0, trace_id=1, span_id=1),
            make_span("client.infer", 0.0, 3.0, trace_id=2, span_id=2),
        ]
        ledgers = build_ledgers(spans)
        assert sorted(l.trace_id for l in ledgers) == [1, 2]

    def test_aggregate_shares_wall_weighted(self):
        # 1s of pure forward + 3s of pure serialize: the aggregate reads as
        # "share of total serving seconds", so forward = 1/4
        a = build_ledger([
            make_span("client.infer", 0.0, 1.0, trace_id=1, span_id=1),
            make_span("net.forward", 0.0, 1.0, trace_id=1, span_id=2,
                      parent_id=1),
        ])
        b = build_ledger([
            make_span("client.infer", 0.0, 3.0, trace_id=2, span_id=3),
        ])
        shares = aggregate_shares([a, b])
        assert shares["net.forward"] == pytest.approx(0.25)
        assert shares["client.serialize"] == pytest.approx(0.75)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_aggregate_shares_empty(self):
        shares = aggregate_shares([])
        assert sum(shares.values()) == 0.0

    def test_format_ledger_lists_all_stages(self):
        spans = [
            make_span("client.infer", 0.0, 10.0, span_id=1, model="dig"),
            make_span("net.forward", 1.0, 9.0, span_id=2, parent_id=1),
            make_span("layer.conv1", 1.0, 5.0, span_id=3, parent_id=2),
        ]
        text = format_ledger(build_ledger(spans))
        for stage in STAGES:
            assert stage in text
        assert "unattributed" in text
        assert "coverage" in text
        assert "slowest layers" in text


class TestBurnRateMonitor:
    def _monitor(self, clock, **kwargs):
        kwargs.setdefault("objective", 0.9)
        kwargs.setdefault("windows_s", (60.0, 600.0))
        kwargs.setdefault("threshold", 2.0)
        kwargs.setdefault("bucket_s", 10.0)
        return BurnRateMonitor(clock=clock, **kwargs)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            BurnRateMonitor(objective=0.0)
        with pytest.raises(ValueError):
            BurnRateMonitor(objective=1.0)
        with pytest.raises(ValueError):
            BurnRateMonitor(windows_s=())
        with pytest.raises(ValueError):
            BurnRateMonitor(threshold=0.0)

    def test_burn_rate_math(self):
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock)
        for _ in range(95):
            monitor.record("dig", attained=True)
        for _ in range(5):
            monitor.record("dig", attained=False)
        # 5% miss rate against a 10% budget = 0.5x burn, in every window
        assert monitor.burn_rate("dig", 60.0) == pytest.approx(0.5)
        assert monitor.burn_rate("dig", 600.0) == pytest.approx(0.5)
        assert monitor.burn_rate("dig", 60.0) == \
            pytest.approx(monitor.snapshot("dig")["burn_60s"])

    def test_no_traffic_burns_zero(self):
        monitor = self._monitor(FakeClock(1000.0))
        assert monitor.burn_rate("missing", 60.0) == 0.0

    def test_fires_and_resolves(self):
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock)
        monitor.record("dig", attained=True, count=80)
        monitor.record("dig", attained=False, count=20)  # 20% miss = 2.0x
        events = monitor.check()
        assert [e["state"] for e in events] == ["firing"]
        assert events[0]["key"] == "dig"
        assert events[0]["burn_60s"] == pytest.approx(2.0)
        assert monitor.snapshot("dig")["firing"] == 1.0
        # steady state: no transition, no duplicate event
        assert monitor.check() == []
        # recovery traffic dilutes the short window below threshold
        clock.now = 1030.0
        monitor.record("dig", attained=True, count=100)
        events = monitor.check()
        assert [e["state"] for e in events] == ["resolved"]
        assert monitor.snapshot("dig")["firing"] == 0.0

    def test_requires_every_window_over_threshold(self):
        # a burst that torches the short window but is diluted over the hour
        # must NOT fire: the long window proves the problem is sustained
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock)
        monitor.record("dig", attained=True, count=1000)
        clock.now = 1500.0
        monitor.record("dig", attained=False, count=10)
        assert monitor.burn_rate("dig", 60.0) == pytest.approx(10.0)
        assert monitor.burn_rate("dig", 600.0) < 2.0
        assert monitor.check() == []

    def test_old_traffic_ages_out(self):
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock)
        monitor.record("dig", attained=False, count=10)
        clock.now = 1000.0 + 600.0 + 20.0  # past the longest window
        assert monitor.burn_rate("dig", 600.0) == 0.0

    def test_record_totals_deltas(self):
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock)
        monitor.record_totals("dig", attained_total=90.0, total=100.0)
        assert monitor.burn_rate("dig", 60.0) == pytest.approx(1.0)
        monitor.record_totals("dig", attained_total=180.0, total=200.0)
        # second poll adds only the delta: 100 more, 10 more missed
        assert monitor.burn_rate("dig", 60.0) == pytest.approx(1.0)

    def test_record_totals_counter_reset(self):
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock)
        monitor.record_totals("dig", attained_total=180.0, total=200.0)
        # process restart: totals drop; the new values are a fresh baseline,
        # never a negative delta
        monitor.record_totals("dig", attained_total=5.0, total=10.0)
        # window now holds 200+10 total, 20+5 missed
        assert monitor.burn_rate("dig", 60.0) == \
            pytest.approx((25.0 / 210.0) / 0.1)

    def test_record_totals_no_delta_no_bucket(self):
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock)
        monitor.record_totals("dig", attained_total=0.0, total=0.0)
        assert monitor.keys() == []

    def test_firing_emits_structured_log_line(self, caplog):
        logger = logging.getLogger("test.slo.burn")
        clock = FakeClock(1000.0)
        monitor = self._monitor(clock, logger=logger)
        monitor.record("dig", attained=False, count=10)
        with caplog.at_level(logging.INFO, logger="test.slo.burn"):
            events = monitor.check()
        assert len(events) == 1
        messages = [rec.getMessage() for rec in caplog.records]
        assert any("event=slo.burn" in msg and "state=firing" in msg
                   and "key=dig" in msg for msg in messages)

    def test_keys_sorted(self):
        monitor = self._monitor(FakeClock(1000.0))
        monitor.record("pos", attained=True)
        monitor.record("dig", attained=True)
        assert monitor.keys() == ["dig", "pos"]
