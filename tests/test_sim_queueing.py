"""Queueing-layer tests, including validation against M/M/1 theory."""

import numpy as np
import pytest

from repro.sim import Environment, Station, run_closed_loop, run_open_loop


def make_station(servers=1, service_s=0.01):
    env = Environment()
    return Station(env, servers=servers, service_time=lambda p: service_s)


class TestStation:
    def test_records_every_request(self):
        station = make_station()
        for i in range(5):
            station.submit(i)
        station.env.run()
        assert station.stats.count == 5

    def test_latency_is_at_least_service_time(self):
        station = make_station(service_s=0.02)
        station.submit(0)
        station.env.run()
        assert station.stats.samples[0] == pytest.approx(0.02)

    def test_payload_dependent_service_time(self):
        env = Environment()
        station = Station(env, servers=1, service_time=lambda batch: 0.001 * batch)
        station.submit(5)
        env.run()
        assert station.stats.samples[0] == pytest.approx(0.005)

    def test_latency_stats_percentiles(self):
        station = make_station()
        for i in range(100):
            station.submit(i)
        station.env.run()
        assert station.stats.percentile(99) >= station.stats.percentile(50)
        assert station.stats.mean() > 0


class TestOpenLoop:
    def test_mm1_mean_latency_matches_theory(self):
        """M/M/1 at rho=0.7: W = 1/(mu - lambda)."""
        env = Environment()
        rng = np.random.default_rng(5)
        station = Station(env, servers=1,
                          service_time=lambda p: float(rng.exponential(0.01)))
        qps, stats = run_open_loop(station, rate_qps=70.0, count=8000, seed=2)
        theory = 1.0 / (100.0 - 70.0)
        assert stats.mean() == pytest.approx(theory, rel=0.15)

    def test_md1_queueing_delay(self):
        """M/D/1 at rho=0.8: Wq = rho*S / (2*(1-rho))."""
        station = make_station(service_s=0.01)
        _, stats = run_open_loop(station, rate_qps=80.0, count=8000, seed=3)
        theory = 0.8 * 0.01 / (2 * 0.2) + 0.01
        assert stats.mean() == pytest.approx(theory, rel=0.15)

    def test_latency_explodes_near_saturation(self):
        light = make_station(service_s=0.01)
        _, light_stats = run_open_loop(light, rate_qps=50.0, count=3000, seed=1)
        heavy = make_station(service_s=0.01)
        _, heavy_stats = run_open_loop(heavy, rate_qps=97.0, count=3000, seed=1)
        assert heavy_stats.mean() > 5 * light_stats.mean()

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            run_open_loop(make_station(), rate_qps=0.0)


class TestClosedLoop:
    def test_throughput_caps_at_service_capacity(self):
        station = make_station(servers=2, service_s=0.01)
        qps, _ = run_closed_loop(station, clients=16, queries_per_client=100)
        assert qps == pytest.approx(200.0, rel=0.05)

    def test_littles_law_holds(self):
        """Closed loop: clients = throughput x latency (Little's law)."""
        station = make_station(servers=2, service_s=0.01)
        qps, stats = run_closed_loop(station, clients=8, queries_per_client=200)
        assert qps * stats.mean() == pytest.approx(8.0, rel=0.05)

    def test_think_time_lowers_utilization(self):
        fast = make_station()
        q_fast, _ = run_closed_loop(fast, clients=4, queries_per_client=100)
        slow = make_station()
        q_slow, _ = run_closed_loop(slow, clients=4, queries_per_client=100,
                                    think_time_s=0.05)
        assert q_slow < q_fast

    def test_rejects_zero_clients(self):
        with pytest.raises(ValueError):
            run_closed_loop(make_station(), clients=0)
