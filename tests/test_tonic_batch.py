"""Property tests: every app's vectorized batch kernels equal the loop.

The batched server pipeline (PR: server-side app pipeline) calls
``preprocess_batch``/``postprocess_batch``; correctness rests on those
vectorized kernels producing *exactly* what the per-item loop produces.
Each test drives an app's override against the base-class fallback
(``TonicApp.preprocess_batch``/``postprocess_batch`` invoked explicitly)
over ragged batches — items contributing different row counts, a
single-item batch, and the empty batch.
"""

import numpy as np
import pytest

from repro.tonic import (
    AsrApp,
    DigApp,
    FaceApp,
    ImcApp,
    PosApp,
    TonicApp,
    Vocabulary,
    WindowFeaturizer,
    digit_dataset,
    face_images,
    generate_corpus,
    imagenet_like_images,
    synthesize_words,
)
from repro.tonic.nlp import TASK_TAGS


def _softmax_rows(rng, rows, width):
    """Plausible DNN posteriors: positive rows summing to one."""
    logits = rng.normal(size=(rows, width)).astype(np.float32)
    exp = np.exp(logits - logits.max(axis=1, keepdims=True))
    return exp / exp.sum(axis=1, keepdims=True)


def _assert_batch_equals_loop(app, raws, out_width, rng):
    """The one property: override == base-class per-item loop, both stages."""
    inputs, counts = app.preprocess_batch(raws)
    ref_inputs, ref_counts = TonicApp.preprocess_batch(app, raws)
    assert counts == ref_counts
    assert inputs.dtype == ref_inputs.dtype
    np.testing.assert_array_equal(inputs, ref_inputs)

    outputs = _softmax_rows(rng, sum(counts), out_width)
    got = app.postprocess_batch(outputs, raws, counts)
    ref = TonicApp.postprocess_batch(app, outputs, raws, counts)
    assert got == ref


class TestImcBatch:
    @pytest.fixture(scope="class")
    def app(self):
        return ImcApp(backend=None)

    def test_batch_equals_loop(self, app, rng):
        images, _ = imagenet_like_images(4, seed=0, size=64)
        _assert_batch_equals_loop(app, list(images), 1000, rng)

    def test_single_item(self, app, rng):
        images, _ = imagenet_like_images(1, seed=1, size=64)
        _assert_batch_equals_loop(app, list(images), 1000, rng)

    def test_empty_batch(self, app):
        inputs, counts = app.preprocess_batch([])
        assert inputs.shape[0] == 0 and counts == []
        assert app.postprocess_batch(np.empty((0, 1000)), [], []) == []


class TestFaceBatch:
    @pytest.fixture(scope="class")
    def app(self):
        return FaceApp(backend=None)

    def test_batch_equals_loop(self, app, rng):
        faces, _ = face_images(4, seed=2, size=64)
        _assert_batch_equals_loop(app, list(faces), 83, rng)

    def test_empty_batch(self, app):
        inputs, counts = app.preprocess_batch([])
        assert inputs.shape[0] == 0 and counts == []


class TestDigBatch:
    @pytest.fixture(scope="class")
    def app(self):
        return DigApp(backend=None)

    def test_ragged_batch_equals_loop(self, app, rng):
        """DIG packs many images per query: counts differ per item."""
        images, _ = digit_dataset(9, seed=3)
        raws = [images[:1], images[1:4], images[4:9]]  # 1 + 3 + 5 rows
        inputs, counts = app.preprocess_batch(raws)
        assert counts == [1, 3, 5]
        _assert_batch_equals_loop(app, raws, 10, rng)

    def test_single_image_items(self, app, rng):
        images, _ = digit_dataset(3, seed=4)
        _assert_batch_equals_loop(app, [img for img in images], 10, rng)

    def test_empty_batch(self, app):
        inputs, counts = app.preprocess_batch([])
        assert inputs.shape == (0, 1, 32, 32) and counts == []


class TestAsrBatch:
    @pytest.fixture(scope="class")
    def app(self):
        return AsrApp(backend=None)

    def test_ragged_batch_equals_loop(self, app, rng):
        """Utterances of different lengths: one row per audio frame."""
        raws = [synthesize_words(words, seed=i)[0]
                for i, words in enumerate((["yes"], ["no", "stop"]))]
        inputs, counts = app.preprocess_batch(raws)
        assert counts[0] != counts[1]  # genuinely ragged
        _assert_batch_equals_loop(app, raws, app.num_senones, rng)


class TestNlpBatch:
    @pytest.fixture(scope="class")
    def app(self):
        corpus = generate_corpus(12, seed=5)
        vocab = Vocabulary(w for s in corpus for w in s.words)
        return PosApp(None, WindowFeaturizer(vocab))

    def test_ragged_batch_equals_loop(self, app, rng):
        """One row per word: sentence lengths make the batch ragged."""
        sentences = generate_corpus(4, seed=6)
        raws = [s.words for s in sentences]
        inputs, counts = app.preprocess_batch(raws)
        assert counts == [len(words) for words in raws]
        _assert_batch_equals_loop(app, raws, len(TASK_TAGS["pos"]), rng)


class TestBaseFallbackLayout:
    """The base loop itself keeps the documented (inputs, counts) contract."""

    def test_counts_sum_to_rows(self, rng):
        app = DigApp(backend=None)
        images, _ = digit_dataset(6, seed=7)
        raws = [images[:2], images[2:6]]
        inputs, counts = TonicApp.preprocess_batch(app, raws)
        assert sum(counts) == len(inputs) == 6

    def test_postprocess_slices_by_counts(self, rng):
        app = DigApp(backend=None)
        images, _ = digit_dataset(5, seed=8)
        raws = [images[:2], images[2:5]]
        inputs, counts = app.preprocess_batch(raws)
        outputs = _softmax_rows(rng, 5, 10)
        results = TonicApp.postprocess_batch(app, outputs, raws, counts)
        assert [len(r) for r in results] == [2, 3]
