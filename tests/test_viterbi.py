"""Unit and property tests for the Viterbi decoder."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tonic.viterbi import viterbi, viterbi_score


def brute_force_best(log_emissions, log_trans, log_init=None):
    steps, states = log_emissions.shape
    best_path, best_score = None, -np.inf
    for path in itertools.product(range(states), repeat=steps):
        score = viterbi_score(list(path), log_emissions, log_trans, log_init)
        if score > best_score:
            best_path, best_score = list(path), score
    return best_path, best_score


class TestBasics:
    def test_single_step_picks_argmax(self):
        em = np.array([[0.1, 0.9, 0.3]])
        path, score = viterbi(np.log(em), np.zeros((3, 3)))
        assert path == [1]
        assert score == pytest.approx(np.log(0.9))

    def test_transitions_override_greedy_choice(self):
        # greedy would pick state 1 at t=0, but moving out of 1 is forbidden
        em = np.log(np.array([[0.4, 0.6], [0.9, 0.1]]))
        trans = np.log(np.array([[0.9, 0.1], [1e-9, 1e-9]]))
        path, _ = viterbi(em, trans)
        assert path == [0, 0]

    def test_empty_sequence(self):
        path, score = viterbi(np.zeros((0, 3)), np.zeros((3, 3)))
        assert path == [] and score == 0.0

    def test_initial_distribution_respected(self):
        em = np.zeros((2, 2))
        init = np.log(np.array([1e-9, 1.0]))
        path, _ = viterbi(em, np.zeros((2, 2)), init)
        assert path[0] == 1

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            viterbi(np.zeros((3, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            viterbi(np.zeros((3,)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            viterbi(np.zeros((3, 2)), np.zeros((2, 2)), np.zeros(3))

    def test_score_function_validates_length(self):
        with pytest.raises(ValueError):
            viterbi_score([0], np.zeros((2, 2)), np.zeros((2, 2)))


class TestOptimality:
    @settings(max_examples=30, deadline=None)
    @given(
        steps=st.integers(min_value=1, max_value=5),
        states=st.integers(min_value=2, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_matches_brute_force(self, steps, states, seed):
        """Property: the Viterbi path score equals the exhaustive optimum."""
        rng = np.random.default_rng(seed)
        em = rng.normal(size=(steps, states))
        trans = rng.normal(size=(states, states))
        init = rng.normal(size=states)
        path, score = viterbi(em, trans, init)
        _, brute = brute_force_best(em, trans, init)
        assert score == pytest.approx(brute, rel=1e-9)
        assert viterbi_score(path, em, trans, init) == pytest.approx(score, rel=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_path_beats_random_paths(self, seed):
        """Property: no sampled path scores above the Viterbi path."""
        rng = np.random.default_rng(seed)
        em = rng.normal(size=(8, 5))
        trans = rng.normal(size=(5, 5))
        _, best = viterbi(em, trans)
        for _ in range(25):
            random_path = rng.integers(0, 5, size=8).tolist()
            assert viterbi_score(random_path, em, trans) <= best + 1e-9
