"""Shared fixtures for the test suite."""

import numpy as np
import pytest


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(0xD1A77)


@pytest.fixture(scope="session")
def session_rng():
    return np.random.default_rng(1234)
