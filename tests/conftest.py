"""Shared fixtures for the test suite.

All randomness in tests flows through one of three doors, so any failure
reproduces from a known seed:

* the autouse :func:`_seed_global_rngs` fixture pins the *global* ``random``
  and ``numpy.random`` state before every test — code under test that
  reaches for module-level RNGs is deterministic without each test having
  to remember to seed;
* :func:`rng` / :func:`py_rng` hand tests a fresh seeded generator of their
  own, isolated from global state;
* :func:`chaos_seed` is the fault-plan seed for chaos runs — override with
  ``CHAOS_SEED=n`` to replay a failure (the CI determinism gate runs the
  chaos suite twice with the same value and diffs the reports).
"""

import os
import random

import numpy as np
import pytest

#: One seed for all deterministic test randomness (arbitrary, stable).
TEST_SEED = 0xD1A77


@pytest.fixture(autouse=True)
def _seed_global_rngs():
    """Pin global RNG state per test; ad-hoc seeding in tests is a smell."""
    random.seed(TEST_SEED)
    np.random.seed(TEST_SEED & 0xFFFFFFFF)


@pytest.fixture
def rng():
    """A fresh deterministic numpy generator per test."""
    return np.random.default_rng(TEST_SEED)


@pytest.fixture
def py_rng():
    """A fresh deterministic ``random.Random`` per test."""
    return random.Random(TEST_SEED)


@pytest.fixture(scope="session")
def session_rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def chaos_seed():
    """Fault-plan seed for chaos tests; set CHAOS_SEED=n to replay a run."""
    return int(os.environ.get("CHAOS_SEED", "0"))
