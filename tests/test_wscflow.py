"""Per-design query-latency simulation tests."""

import pytest

from repro.gpusim import app_model
from repro.sim.wscflow import NETWORK_HOP, compare_designs, simulate_design_flow


class TestDesignFlow:
    @pytest.fixture(scope="class")
    def pos_results(self):
        # 5000 QPS is comfortably inside every design's capacity for POS
        return compare_designs(app_model("pos"), offered_qps=5000.0)

    def test_gpu_designs_cut_latency_for_heavy_apps(self):
        """IMC on a GPU answers in ms; 12 Xeon cores take ~140 ms."""
        results = compare_designs(app_model("imc"), offered_qps=50.0)
        assert results["integrated"].mean_latency_s < 0.2 * results["cpu_only"].mean_latency_s
        assert results["disaggregated"].mean_latency_s < 0.2 * results["cpu_only"].mean_latency_s

    def test_disaggregation_pays_a_network_hop(self, pos_results):
        """The disaggregated design's extra fabric hop shows up as latency —
        the flexibility/latency trade behind the paper's Figure 14c."""
        assert (pos_results["disaggregated"].mean_latency_s
                > pos_results["integrated"].mean_latency_s)

    def test_all_designs_sustain_the_offered_load(self, pos_results):
        for result in pos_results.values():
            assert result.achieved_qps == pytest.approx(5000.0, rel=0.1)

    def test_p99_at_least_mean(self, pos_results):
        for result in pos_results.values():
            assert result.p99_latency_s >= result.mean_latency_s

    def test_overload_diverges(self):
        """Past the CPU-only capacity (12 cores / 4.9 s per ASR query),
        latency is queue-dominated."""
        over = simulate_design_flow(app_model("asr"), "cpu_only",
                                    offered_qps=6.0, queries=500)
        under = simulate_design_flow(app_model("asr"), "cpu_only",
                                     offered_qps=1.5, queries=500)
        assert over.mean_latency_s > 10 * under.mean_latency_s

    def test_network_hop_assumptions(self):
        from repro.gpusim.pcie import PCIE_V3_X16

        # the fabric hop has more latency and less bandwidth than PCIe
        assert NETWORK_HOP.latency_us > PCIE_V3_X16.latency_us
        assert NETWORK_HOP.effective_gbs <= PCIE_V3_X16.effective_gbs + 1.0

    def test_validation(self):
        with pytest.raises(ValueError, match="unknown design"):
            simulate_design_flow(app_model("pos"), "hybrid", 100.0)
        with pytest.raises(ValueError):
            simulate_design_flow(app_model("pos"), "cpu_only", 0.0)
