"""Tests for the DjiNN endpoint queueing simulation."""

import pytest

from repro.gpusim import app_model
from repro.sim.cluster import DjinnEndpointSim


@pytest.fixture(scope="module")
def pos_endpoint():
    return DjinnEndpointSim(app_model("pos"), gpus=2)


class TestCapacity:
    def test_capacity_arithmetic(self, pos_endpoint):
        expected = 2 * 64 / app_model("pos").gpu_query_time(64)
        assert pos_endpoint.capacity_qps == pytest.approx(expected)

    def test_capacity_scales_with_gpus(self):
        one = DjinnEndpointSim(app_model("imc"), gpus=1).capacity_qps
        four = DjinnEndpointSim(app_model("imc"), gpus=4).capacity_qps
        assert four == pytest.approx(4 * one)

    def test_validation(self):
        with pytest.raises(ValueError):
            DjinnEndpointSim(app_model("pos"), gpus=0)
        with pytest.raises(ValueError):
            DjinnEndpointSim(app_model("pos")).run(0.0)


class TestLatencyBehaviour:
    def test_achieved_tracks_offered_below_capacity(self, pos_endpoint):
        point = pos_endpoint.run(0.5 * pos_endpoint.capacity_qps, queries=4000)
        assert point.achieved_qps == pytest.approx(point.offered_qps, rel=0.1)
        assert point.utilization < 0.7

    def test_batch_fill_dominates_at_low_load(self, pos_endpoint):
        """With full-batch departures, a lightly loaded endpoint makes
        queries wait for the batch to fill — latency *drops* as load rises
        (the phenomenon timeout-based batching policies exist to fix)."""
        low = pos_endpoint.run(0.1 * pos_endpoint.capacity_qps, queries=3000)
        high = pos_endpoint.run(0.8 * pos_endpoint.capacity_qps, queries=3000)
        assert low.mean_latency_s > high.mean_latency_s

    def test_queueing_dominates_past_capacity(self, pos_endpoint):
        """Offering more than capacity grows the queue without bound —
        'the queuing delay starts to dominate the latency' (§5.1)."""
        near = pos_endpoint.run(0.9 * pos_endpoint.capacity_qps, queries=4000)
        over = pos_endpoint.run(1.5 * pos_endpoint.capacity_qps, queries=6000)
        assert over.mean_latency_s > 3 * near.mean_latency_s  # grows with backlog
        assert over.achieved_qps < over.offered_qps * 0.95    # throughput sheds

    def test_p99_at_least_mean(self, pos_endpoint):
        point = pos_endpoint.run(0.7 * pos_endpoint.capacity_qps, queries=3000)
        assert point.p99_latency_s >= point.mean_latency_s

    def test_latency_floor_is_service_time(self, pos_endpoint):
        point = pos_endpoint.run(0.8 * pos_endpoint.capacity_qps, queries=3000)
        assert point.mean_latency_s >= pos_endpoint.batch_service_s

    def test_smaller_batch_cuts_low_load_latency(self):
        big = DjinnEndpointSim(app_model("pos"), gpus=1, batch=64)
        small = DjinnEndpointSim(app_model("pos"), gpus=1, batch=4)
        rate = 0.2 * big.capacity_qps
        assert small.run(rate, queries=2000).mean_latency_s < big.run(
            rate, queries=2000).mean_latency_s
