"""Unit tests for the roofline kernel cost model."""

import pytest

from repro.gpusim import K40, XEON_E5_2620V2_CORE, Kernel, gpu_kernel_timing
from repro.gpusim.cost import cpu_forward_time, gpu_forward_time
from repro.models import build_net
from repro.nn import analyze


def gemm_kernel(flops=1e9, blocks=2000, tile_util=1.0, param_bytes=0.0,
                activation_bytes=0.0, kind="gemm", reduction=512, launches=1):
    return Kernel("k", kind, flops, param_bytes, activation_bytes,
                  blocks=blocks, tile_util=tile_util, reduction=reduction,
                  launches=launches)


class TestKernelTiming:
    def test_compute_bound_time_scales_with_flops(self):
        t1 = gpu_kernel_timing(gemm_kernel(flops=1e9), K40).time_s
        t2 = gpu_kernel_timing(gemm_kernel(flops=2e9), K40).time_s
        assert t2 / t1 == pytest.approx(2.0, rel=0.05)

    def test_low_occupancy_slows_kernels(self):
        fast = gpu_kernel_timing(gemm_kernel(blocks=2000), K40)
        slow = gpu_kernel_timing(gemm_kernel(blocks=8), K40)
        assert slow.time_s > 5 * fast.time_s
        assert slow.occupancy < fast.occupancy

    def test_memory_bound_kernel_ignores_occupancy(self):
        """A weight-streaming kernel is paced by DRAM, not FLOPs."""
        kernel = gemm_kernel(flops=1e6, param_bytes=400e6, blocks=5000)
        timing = gpu_kernel_timing(kernel, K40)
        assert not timing.compute_bound
        expected = 400e6 / (K40.effective_mem_gbs * 1e9)
        assert timing.busy_s == pytest.approx(expected, rel=0.01)

    def test_lc_kernels_pay_the_streaming_penalty(self):
        shared = gemm_kernel(flops=1e6, param_bytes=100e6, kind="gemm")
        unshared = gemm_kernel(flops=1e6, param_bytes=100e6, kind="lc_gemm")
        a = gpu_kernel_timing(shared, K40).busy_s
        b = gpu_kernel_timing(unshared, K40).busy_s
        assert b == pytest.approx(a * K40.lc_mem_penalty, rel=0.01)

    def test_min_kernel_floor(self):
        tiny = gemm_kernel(flops=10.0, blocks=1)
        timing = gpu_kernel_timing(tiny, K40)
        assert timing.busy_s >= K40.min_kernel_us * 1e-6

    def test_launch_overhead_added_per_launch(self):
        one = gpu_kernel_timing(gemm_kernel(flops=1e6, launches=1), K40).time_s
        ten = gpu_kernel_timing(gemm_kernel(flops=1e6, launches=10), K40).time_s
        assert ten > one  # same total flops, more launches

    def test_resource_demand_in_unit_interval(self):
        for kernel in (gemm_kernel(), gemm_kernel(param_bytes=1e9),
                       gemm_kernel(kind="elementwise", tile_util=1.0, reduction=0)):
            demand = gpu_kernel_timing(kernel, K40).resource_demand
            assert 0.0 < demand <= 1.0

    def test_short_reduction_lowers_compute_demand(self):
        long_k = gpu_kernel_timing(gemm_kernel(reduction=2048), K40)
        short_k = gpu_kernel_timing(gemm_kernel(reduction=16), K40)
        assert short_k.resource_demand < long_k.resource_demand


class TestForwardTimes:
    def test_gpu_time_grows_sublinearly_then_linearly_with_batch(self):
        """The batching effect behind Figure 7a: cheap at first (occupancy
        fills), linear once saturated."""
        net = build_net("pos")
        t1 = gpu_forward_time(analyze(net, 28), K40).time_s
        t64 = gpu_forward_time(analyze(net, 28 * 64), K40).time_s
        t128 = gpu_forward_time(analyze(net, 28 * 128), K40).time_s
        assert t64 < 64 * t1 * 0.25          # batching is a big win early
        assert t128 / t64 == pytest.approx(2.0, rel=0.25)  # linear once full

    def test_cpu_time_linear_in_batch_for_large_nets(self):
        net = build_net("asr")
        t1 = cpu_forward_time(analyze(net, 100), XEON_E5_2620V2_CORE)
        t2 = cpu_forward_time(analyze(net, 200), XEON_E5_2620V2_CORE)
        assert t2 / t1 == pytest.approx(2.0, rel=0.1)

    def test_weighted_occupancy_bounded(self):
        profile = gpu_forward_time(analyze(build_net("asr"), 548), K40)
        assert 0.0 < profile.weighted_occupancy <= K40.occupancy_cap + 1e-9

    def test_gpu_faster_than_cpu_at_natural_query_sizes(self):
        # one query's DNN rows per Table 3 (a DIG query is 100 images, etc.)
        for app, rows in (("imc", 1), ("dig", 100), ("face", 1), ("asr", 548), ("pos", 28)):
            cost = analyze(build_net(app), rows)
            gpu = gpu_forward_time(cost, K40).time_s
            cpu = cpu_forward_time(cost, XEON_E5_2620V2_CORE)
            assert gpu < cpu, app
