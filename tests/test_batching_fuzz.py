"""Randomized stress tests of the batching executor: under arbitrary
interleavings of request sizes across threads, every client must get
exactly its own rows back.
"""

import threading

import numpy as np
import pytest

from repro.core import BatchingExecutor, BatchPolicy, ModelRegistry
from repro.models import senna


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register_spec("pos", senna("pos"), seed=0)
    return reg


@pytest.mark.parametrize("seed", [0, 1, 2])
@pytest.mark.parametrize("max_batch,timeout_ms", [(4, 1.0), (32, 5.0), (256, 0.5)])
def test_random_request_streams_scatter_correctly(registry, seed, max_batch, timeout_ms):
    """8 threads, each a random stream of 1-7-row requests with distinctive
    contents; all results must equal a direct forward of the same rows."""
    rng = np.random.default_rng(seed)
    net = registry.get("pos")
    executor = BatchingExecutor(registry, BatchPolicy(max_batch, timeout_ms))
    failures = []

    def client(cid):
        crng = np.random.default_rng(1000 * seed + cid)
        for i in range(10):
            rows = int(crng.integers(1, 8))
            # encode (client, request) in the inputs so misrouting is loud
            x = crng.normal(size=(rows, 300)).astype(np.float32)
            x[:, 0] = cid * 100 + i
            try:
                got = executor.submit("pos", x)
                want = net.forward(x)
                if not np.allclose(got, want, rtol=1e-4, atol=1e-5):
                    failures.append((cid, i, "wrong rows"))
                if got.shape != (rows, 45):
                    failures.append((cid, i, f"bad shape {got.shape}"))
            except Exception as exc:  # noqa: BLE001 - collected for assertion
                failures.append((cid, i, repr(exc)))

    threads = [threading.Thread(target=client, args=(c,)) for c in range(8)]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        executor.close()
    assert not failures, failures[:5]
    # row conservation: replay each client's RNG stream to count its rows
    expected_rows = 0
    for cid in range(8):
        crng = np.random.default_rng(1000 * seed + cid)
        for _ in range(10):
            rows = int(crng.integers(1, 8))
            crng.normal(size=(rows, 300))
            expected_rows += rows
    assert sum(executor.executed_batches["pos"]) == expected_rows


def test_row_conservation(registry):
    """Rows in == rows out of the executor, across any coalescing."""
    executor = BatchingExecutor(registry, BatchPolicy(max_batch=16, timeout_ms=2.0))
    sizes = [1, 3, 5, 2, 7, 4, 6, 1, 2, 3]
    barrier = threading.Barrier(len(sizes))

    def client(n):
        barrier.wait()
        executor.submit("pos", np.zeros((n, 300), np.float32))

    threads = [threading.Thread(target=client, args=(n,)) for n in sizes]
    try:
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    finally:
        executor.close()
    assert sum(executor.executed_batches["pos"]) == sum(sizes)
    assert max(executor.executed_batches["pos"]) <= 16 + max(sizes)
