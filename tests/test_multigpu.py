"""Multi-GPU scaling model tests (Figures 11, 12, 13)."""

import pytest

from repro.gpusim import GpuServerModel, app_model
from repro.gpusim.device import PLATFORM

NLP = ("pos", "chk", "ner")
COMPUTE_HEAVY = ("imc", "dig", "face", "asr")


def server(app):
    return GpuServerModel(app_model(app))


class TestScaling:
    def test_compute_heavy_apps_scale_near_linearly(self):
        """Fig 11: image + ASR services scale ~linearly to 8 GPUs.  DIG is
        the marginal case (its Fig 13 bandwidth line is the highest of the
        compute-heavy group), so it is allowed to brush the host link."""
        for app in COMPUTE_HEAVY:
            pts = server(app).sweep((1, 8))
            assert pts[1].qps / pts[0].qps > 7.0, app
        for app in ("imc", "face", "asr"):
            assert not server(app).scale(8).link_limited, app

    def test_nlp_plateaus_around_4_gpus(self):
        """Fig 11: NLP throughput plateaus as GPUs reach 4."""
        for app in NLP:
            pts = server(app).sweep((1, 2, 4, 8))
            rel = [p.qps / pts[0].qps for p in pts]
            assert rel[2] > 3.5, (app, rel)       # still ~linear at 4
            assert rel[3] < 7.0, (app, rel)       # capped well below 8
            assert pts[3].link_limited, app

    def test_pinned_inputs_remove_the_plateau(self):
        """Fig 12: without PCIe transfers every app scales near-linearly."""
        for app in NLP + COMPUTE_HEAVY:
            pts = server(app).sweep((1, 8), pinned=True)
            assert pts[1].qps / pts[0].qps > 7.5, app

    def test_three_apps_reach_about_1000x_at_8_gpus(self):
        """Abstract: 'near-linear scaling (around 1000x throughput
        improvement) for 3 of the 7 applications'."""
        speedups = {app: server(app).speedup_vs_cpu_core(8)
                    for app in ("imc", "dig", "face", "asr", "pos")}
        near_1000 = [app for app, s in speedups.items() if s > 700]
        assert len(near_1000) >= 3, speedups

    def test_scale_validates_gpu_count(self):
        with pytest.raises(ValueError):
            server("imc").scale(0)


class TestBandwidthRequirements:
    def test_nlp_requirements_far_exceed_pcie_v3(self):
        """Fig 13: light-computation tasks require far higher bandwidth."""
        for app in NLP:
            required = server(app).bandwidth_required_gbs(8)
            assert required > 1.5 * PLATFORM.host_link_gbs, (app, required)
            assert required > 3 * PLATFORM.pcie_per_gpu_gbs, (app, required)

    def test_compute_heavy_apps_need_at_least_4_gbs_at_8_gpus(self):
        """Fig 13: 'theoretical throughput can be achieved by a network
        with a bandwidth of at least 4GB/s' for the compute-heavy tasks."""
        needs = [server(app).bandwidth_required_gbs(8) for app in ("imc", "face", "asr")]
        assert max(needs) > 4.0
        assert max(needs) < PLATFORM.host_link_gbs  # and PCIe v3-era links suffice

    def test_10gbe_is_below_everything(self):
        from repro.gpusim.pcie import ETH_10G
        for app in ("imc", "dig", "asr", "pos"):
            assert server(app).bandwidth_required_gbs(8) > ETH_10G.effective_gbs, app

    def test_requirement_linear_in_gpus(self):
        srv = server("pos")
        assert srv.bandwidth_required_gbs(8) == pytest.approx(
            8 * srv.bandwidth_required_gbs(1), rel=1e-6
        )


class TestLinks:
    def test_link_transfer_time(self):
        from repro.gpusim.pcie import ETH_10G, PCIE_V3_X16
        payload = 1e9
        assert PCIE_V3_X16.transfer_s(payload) < ETH_10G.transfer_s(payload)
        assert ETH_10G.effective_gbs == pytest.approx(1.0)  # 20% overhead off 1.25

    def test_link_rejects_negative_payload(self):
        from repro.gpusim.pcie import PCIE_V3_X16
        with pytest.raises(ValueError):
            PCIE_V3_X16.transfer_s(-1.0)

    def test_qpi_host_matches_paper_arithmetic(self):
        from repro.gpusim.pcie import QPI_12_GPU_HOST, QPI_LINK
        assert QPI_12_GPU_HOST.raw_gbs == pytest.approx(12 * QPI_LINK.raw_gbs)
