"""Unit tests for the model registry, service stats, and batching executor."""

import threading

import numpy as np
import pytest

from repro.core import BatchingExecutor, BatchPolicy, ModelRegistry, ServiceStats
from repro.models import lenet5, senna
from repro.nn import Net


@pytest.fixture
def registry():
    reg = ModelRegistry()
    reg.register_spec("pos", senna("pos"), seed=1)
    return reg


class TestRegistry:
    def test_register_and_get(self, registry):
        assert registry.get("pos").name == "senna_pos"
        assert "pos" in registry
        assert registry.names() == ["pos"]

    def test_rejects_unmaterialized(self):
        reg = ModelRegistry()
        with pytest.raises(ValueError, match="materialized"):
            reg.register("dig", Net(lenet5()))

    def test_rejects_duplicates(self, registry):
        with pytest.raises(ValueError, match="already"):
            registry.register_spec("pos", senna("pos"))

    def test_unknown_model_lists_available(self, registry):
        with pytest.raises(KeyError, match="available.*pos"):
            registry.get("face")

    def test_total_param_bytes(self, registry):
        assert registry.total_param_bytes() == registry.get("pos").param_bytes()

    def test_concurrent_reads_share_one_model(self, registry):
        """Many workers, one in-memory model (paper §3.1)."""
        nets = []

        def worker():
            nets.append(registry.get("pos"))

        threads = [threading.Thread(target=worker) for _ in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert all(n is nets[0] for n in nets)


class TestServiceStats:
    def test_snapshot_summary(self):
        stats = ServiceStats()
        for latency in (0.010, 0.020, 0.030):
            stats.record("pos", latency, inputs=28)
        snap = stats.snapshot()["pos"]
        assert snap["requests"] == 3
        assert snap["inputs"] == 84
        assert snap["mean_ms"] == pytest.approx(20.0)
        assert snap["p99_ms"] <= 30.0 + 1e-6

    def test_window_bounds_memory(self):
        stats = ServiceStats(window=10)
        for i in range(100):
            stats.record("x", 0.001 * i)
        assert stats.requests("x") == 100
        snap = stats.snapshot()["x"]
        assert snap["mean_ms"] >= 90.0  # only the last 10 retained

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            ServiceStats(window=0)


class TestBatchingExecutor:
    def test_results_match_direct_forward(self, registry, rng):
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=8, timeout_ms=1.0))
        x = rng.normal(size=(3, 300)).astype(np.float32)
        try:
            out = executor.submit("pos", x)
            np.testing.assert_allclose(out, registry.get("pos").forward(x), rtol=1e-5)
        finally:
            executor.close()

    def test_concurrent_requests_coalesce(self, registry, rng):
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=64, timeout_ms=50.0))
        # force the queue path: this test pins coalescing, which the
        # batch-1 fast path legitimately skips on an idle model
        executor._fast_off.add("pos")
        results = {}
        barrier = threading.Barrier(8)

        def client(i):
            x = np.full((2, 300), float(i), dtype=np.float32)
            barrier.wait()
            results[i] = executor.submit("pos", x)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(8)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # each client got exactly its own 2 rows back
            for i in range(8):
                expected = registry.get("pos").forward(np.full((2, 300), float(i), np.float32))
                np.testing.assert_allclose(results[i], expected, rtol=1e-5)
            batches = executor.executed_batches["pos"]
            assert max(batches) > 2  # real coalescing happened
            assert sum(batches) == 16
        finally:
            executor.close()

    def test_unknown_model_fails_fast(self, registry):
        executor = BatchingExecutor(registry)
        try:
            with pytest.raises(KeyError):
                executor.submit("nope", np.zeros((1, 4), np.float32))
        finally:
            executor.close()

    def test_error_delivered_to_all_waiters(self, registry):
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=4, timeout_ms=20.0))
        errors = []
        barrier = threading.Barrier(2)

        def client():
            barrier.wait()
            try:
                executor.submit("pos", np.zeros((1, 7), np.float32))  # wrong width
            except Exception as exc:
                errors.append(exc)

        threads = [threading.Thread(target=client) for _ in range(2)]
        try:
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(errors) == 2
        finally:
            executor.close()

    def test_submit_after_close_raises(self, registry):
        executor = BatchingExecutor(registry)
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit("pos", np.zeros((1, 300), np.float32))

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            BatchPolicy(max_batch=0)
        with pytest.raises(ValueError):
            BatchPolicy(timeout_ms=-1.0)
