"""Unit tests for im2col lowering and the convolution layer, including a
naive direct-convolution reference implementation.
"""

import numpy as np
import pytest

from repro.nn import check_layer_gradients
from repro.nn.layers import ConvolutionLayer, ShapeError
from repro.nn.layers._im2col import col2im, conv_output_size, im2col


def naive_conv(x, weight, bias, stride, pad, group):
    """Direct convolution, trusted reference."""
    n, c, h, w = x.shape
    cout, cin_g, kh, kw = weight.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out_h = (x.shape[2] - kh) // stride + 1
    out_w = (x.shape[3] - kw) // stride + 1
    y = np.zeros((n, cout, out_h, out_w))
    cpg_in = c // group
    cpg_out = cout // group
    for b in range(n):
        for o in range(cout):
            g = o // cpg_out
            for i in range(out_h):
                for j in range(out_w):
                    patch = x[b, g * cpg_in : (g + 1) * cpg_in,
                              i * stride : i * stride + kh,
                              j * stride : j * stride + kw]
                    y[b, o, i, j] = np.sum(patch * weight[o]) + (bias[o] if bias is not None else 0.0)
    return y


class TestIm2Col:
    def test_output_size_formula(self):
        assert conv_output_size(227, 11, 4, 0) == 55
        assert conv_output_size(27, 5, 1, 2) == 27

    def test_rejects_oversized_kernel(self):
        with pytest.raises(ValueError, match="does not fit"):
            conv_output_size(4, 7, 1, 0)

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        cols = im2col(x, 3, 3, stride=1, pad=1)
        assert cols.shape == (2, 3 * 9, 64)

    def test_im2col_values(self, rng):
        x = rng.normal(size=(1, 1, 4, 4))
        cols = im2col(x, 2, 2, stride=2, pad=0)
        # first output position is the top-left 2x2 window, flattened (kh, kw)
        np.testing.assert_allclose(cols[0, :, 0], x[0, 0, :2, :2].ravel())

    def test_col2im_adjoint_of_im2col(self, rng):
        """<im2col(x), c> == <x, col2im(c)> — the transpose relationship
        every backward pass relies on."""
        x = rng.normal(size=(2, 3, 7, 7))
        cols = im2col(x, 3, 3, stride=2, pad=1)
        c = rng.normal(size=cols.shape)
        lhs = float(np.sum(cols * c))
        rhs = float(np.sum(x * col2im(c, x.shape, 3, 3, stride=2, pad=1)))
        assert abs(lhs - rhs) < 1e-8 * max(1.0, abs(lhs))


class TestConvolutionForward:
    @pytest.mark.parametrize("stride,pad,group", [(1, 0, 1), (2, 1, 1), (1, 2, 2), (3, 0, 2)])
    def test_matches_naive_reference(self, rng, stride, pad, group):
        layer = ConvolutionLayer("conv", num_output=4, kernel_size=3,
                                 stride=stride, pad=pad, group=group)
        layer.setup((4, 9, 9))
        layer.materialize(rng)
        x = rng.normal(size=(2, 4, 9, 9)).astype(np.float32)
        y = layer.forward(x)
        expected = naive_conv(x, layer.weight.data, layer.bias_blob.data, stride, pad, group)
        np.testing.assert_allclose(y, expected, rtol=1e-4, atol=1e-5)

    def test_output_shape(self, rng):
        layer = ConvolutionLayer("conv", num_output=96, kernel_size=11, stride=4)
        assert layer.setup((3, 227, 227)) == (96, 55, 55)

    def test_rejects_non_chw_input(self):
        layer = ConvolutionLayer("conv", num_output=4, kernel_size=3)
        with pytest.raises(ShapeError):
            layer.setup((16,))

    def test_rejects_indivisible_groups(self):
        with pytest.raises(ValueError, match="divisible"):
            ConvolutionLayer("conv", num_output=5, kernel_size=3, group=2)
        layer = ConvolutionLayer("conv", num_output=4, kernel_size=3, group=2)
        with pytest.raises(ShapeError, match="divisible"):
            layer.setup((3, 8, 8))


class TestConvolutionBackward:
    @pytest.mark.parametrize("stride,pad,group", [(1, 0, 1), (2, 1, 2)])
    def test_gradients_match_numerical(self, rng, stride, pad, group):
        layer = ConvolutionLayer("conv", num_output=4, kernel_size=3,
                                 stride=stride, pad=pad, group=group)
        layer.setup((2, 6, 6))
        layer.materialize(rng)
        errors = check_layer_gradients(layer, rng.normal(size=(2, 2, 6, 6)))
        assert all(err < 1e-3 for err in errors.values()), errors

    def test_backward_requires_train_forward(self, rng):
        layer = ConvolutionLayer("conv", num_output=2, kernel_size=3)
        layer.setup((1, 5, 5))
        layer.materialize(rng)
        layer.forward(rng.normal(size=(1, 1, 5, 5)), train=False)
        with pytest.raises(RuntimeError, match="backward before forward"):
            layer.backward(np.zeros((1, 2, 3, 3)))


class TestConvolutionCost:
    def test_flops_formula(self):
        layer = ConvolutionLayer("conv", num_output=8, kernel_size=3, group=2, bias=False)
        layer.setup((4, 6, 6))
        # per group: 4 out-ch x (2 in-ch * 9) fan-in x 16 positions x 2
        assert layer.flops_per_sample() == 2 * 8 * 2 * 9 * 16

    def test_gemm_shapes_per_group_scale_with_batch(self):
        layer = ConvolutionLayer("conv", num_output=8, kernel_size=3, group=2)
        layer.setup((4, 6, 6))
        shapes = layer.gemm_shapes(batch=3)
        assert shapes == [(4, 48, 18), (4, 48, 18)]

    def test_alexnet_conv1_params(self):
        layer = ConvolutionLayer("conv1", num_output=96, kernel_size=11, stride=4)
        layer.setup((3, 227, 227))
        assert layer.param_count() == 96 * 3 * 121 + 96
