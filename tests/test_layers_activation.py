"""Unit tests for the activation layers."""

import numpy as np
import pytest

from repro.nn import check_layer_gradients
from repro.nn.layers import HardTanhLayer, ReLULayer, SigmoidLayer, TanhLayer

ALL_ACTIVATIONS = [ReLULayer, SigmoidLayer, TanhLayer, HardTanhLayer]


def make(cls, shape=(4,)):
    layer = cls("act")
    layer.setup(shape)
    return layer


class TestForwardValues:
    def test_relu(self):
        layer = make(ReLULayer, (3,))
        x = np.array([[-1.0, 0.0, 2.0]], dtype=np.float32)
        np.testing.assert_array_equal(layer.forward(x), [[0.0, 0.0, 2.0]])

    def test_sigmoid_range_and_midpoint(self, rng):
        layer = make(SigmoidLayer, (100,))
        x = rng.normal(scale=50.0, size=(2, 100)).astype(np.float32)
        y = layer.forward(x)
        assert np.all((y >= 0.0) & (y <= 1.0))
        assert not np.any(np.isnan(y))  # stable at extreme inputs
        mid = layer.forward(np.zeros((1, 100), dtype=np.float32))
        np.testing.assert_allclose(mid, 0.5)

    def test_tanh(self, rng):
        layer = make(TanhLayer, (10,))
        x = rng.normal(size=(3, 10)).astype(np.float32)
        np.testing.assert_allclose(layer.forward(x), np.tanh(x), rtol=1e-6)

    def test_hardtanh_clamps(self):
        layer = make(HardTanhLayer, (4,))
        x = np.array([[-5.0, -0.5, 0.5, 5.0]], dtype=np.float32)
        np.testing.assert_array_equal(layer.forward(x), [[-1.0, -0.5, 0.5, 1.0]])


class TestShapeAndCost:
    @pytest.mark.parametrize("cls", ALL_ACTIVATIONS)
    def test_shape_preserved(self, cls):
        layer = make(cls, (3, 5, 5))
        assert layer.out_shape == (3, 5, 5)
        assert layer.flops_per_sample() == 75
        assert layer.gemm_shapes(4) == []
        assert layer.param_count() == 0


class TestBackward:
    @pytest.mark.parametrize("cls", ALL_ACTIVATIONS)
    def test_gradients_match_numerical(self, rng, cls):
        layer = make(cls, (6,))
        # avoid the kink points of relu/hardtanh for finite differences
        x = rng.uniform(0.1, 0.8, size=(3, 6)) * rng.choice([-1.0, 1.0], size=(3, 6))
        errors = check_layer_gradients(layer, x, eps=1e-5)
        assert errors["input"] < 1e-4, (cls.__name__, errors)

    @pytest.mark.parametrize("cls", ALL_ACTIVATIONS)
    def test_backward_before_forward_raises(self, cls):
        layer = make(cls)
        with pytest.raises(RuntimeError, match="backward before forward"):
            layer.backward(np.zeros((1, 4)))

    def test_relu_masks_negative_side(self):
        layer = make(ReLULayer, (2,))
        layer.forward(np.array([[-1.0, 1.0]], dtype=np.float32), train=True)
        dx = layer.backward(np.array([[7.0, 7.0]], dtype=np.float32))
        np.testing.assert_array_equal(dx, [[0.0, 7.0]])

    def test_hardtanh_blocks_gradient_outside_band(self):
        layer = make(HardTanhLayer, (3,))
        layer.forward(np.array([[-2.0, 0.0, 2.0]], dtype=np.float32), train=True)
        dx = layer.backward(np.ones((1, 3), dtype=np.float32))
        np.testing.assert_array_equal(dx, [[0.0, 1.0, 0.0]])
