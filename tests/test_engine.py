"""Planned execution engine: arena plans must be byte-identical to the
legacy allocating path, reuse their arenas cleanly, and serve the batching
executor copy-free.
"""

import threading

import numpy as np
import pytest

from repro.core import BatchingExecutor, BatchPolicy, ModelRegistry
from repro.models import build_net
from repro.nn import (
    ExecutionPlan,
    GraphLayerSpec,
    GraphNet,
    GraphSpec,
    Net,
    PlanError,
    measure_steady_state_alloc,
    plan_footprint,
)
from repro.models import lenet5


def batch_for(net, n, rng, seed_offset=0):
    gen = np.random.default_rng(rng if isinstance(rng, int) else 0)
    return gen.standard_normal((n,) + tuple(net.input_shape)).astype(np.float32)


# --------------------------------------------------------------- equivalence
class TestPlanEquivalence:
    """Planned output must be *byte-identical* to the legacy path: both run
    the same ``forward_into`` kernels, only the buffers differ."""

    #: every zoo model, with a plan width small enough to keep FACE (120M
    #: params) affordable in CI
    CASES = [("imc", 4), ("dig", 8), ("face", 2), ("asr", 8), ("pos", 8)]

    @pytest.mark.parametrize("app,max_batch", CASES)
    def test_zoo_model_byte_identical(self, app, max_batch):
        net = build_net(app, materialize=True)
        plan = ExecutionPlan(net, max_batch)
        gen = np.random.default_rng(7)
        # full, partial, and single-sample batches through one arena
        for n in {max_batch, max(1, max_batch // 2), 1}:
            x = gen.standard_normal((n,) + tuple(net.input_shape)).astype(np.float32)
            np.testing.assert_array_equal(net.forward(x), plan.run(x))

    def test_back_to_back_reuse_no_stale_bleed(self):
        # a large batch followed by a small one: the small batch's output
        # must not contain any residue of the large batch's arena contents
        net = build_net("dig", materialize=True)
        plan = ExecutionPlan(net, 8)
        gen = np.random.default_rng(11)
        big = gen.standard_normal((8,) + tuple(net.input_shape)).astype(np.float32)
        small = gen.standard_normal((2,) + tuple(net.input_shape)).astype(np.float32)
        plan.run(big)
        np.testing.assert_array_equal(net.forward(small), plan.run(small))
        # and shrinking further still matches, repeatedly
        one = small[:1]
        for _ in range(3):
            np.testing.assert_array_equal(net.forward(one), plan.run(one))

    def test_run_returns_owned_array(self):
        net = build_net("pos", materialize=True)
        plan = ExecutionPlan(net, 4)
        x = batch_for(net, 2, 3)
        first = plan.run(x)
        second = plan.run(x * 2.0)
        # first must not have been clobbered by the second execute
        assert not np.array_equal(first, second)
        np.testing.assert_array_equal(first, plan.run(x))


# ------------------------------------------------------------ net dispatch
class TestNetDispatch:
    def test_attached_plan_serves_inference(self):
        net = build_net("dig", materialize=True)
        x = batch_for(net, 4, 5)
        legacy = net.forward(x)
        plan = net.compile_plan(8)
        assert net.plan is plan
        np.testing.assert_array_equal(net.forward(x), legacy)

    def test_oversize_batch_falls_back(self):
        net = build_net("pos", materialize=True)
        net.compile_plan(2)
        x = batch_for(net, 5, 9)  # wider than the plan envelope
        ref = Net(net.spec)
        ref.copy_weights_from(net)
        np.testing.assert_array_equal(net.forward(x), ref.forward(x))

    def test_train_bypasses_plan(self):
        net = build_net("pos", materialize=True)
        net.compile_plan(4)
        x = batch_for(net, 2, 13)
        out = net.forward(x, train=True)
        # training caches must be populated for backward (plan would skip them)
        net.backward(np.ones_like(out))
        assert any(blob.grad.any() for blob in net.params())


# ------------------------------------------------------------------ graphs
class TestGraphPlans:
    @staticmethod
    def fanout_graph():
        # input -> ip1 -> relu consumed by BOTH branches: relu must not be
        # executed in-place over ip1's buffer while sum still needs it
        spec = GraphSpec(
            name="fanout",
            input_shape=(6,),
            layers=(
                GraphLayerSpec("InnerProduct", "ip1", ("input",),
                               {"num_output": 6}),
                GraphLayerSpec("ReLU", "act", ("ip1",)),
                GraphLayerSpec("EltwiseSum", "sum", ("ip1", "act")),
                GraphLayerSpec("InnerProduct", "head", ("sum",),
                               {"num_output": 3}),
                GraphLayerSpec("Softmax", "prob", ("head",)),
            ),
            output="prob",
        )
        return GraphNet(spec).materialize(3)

    def test_dag_with_fanout_byte_identical(self):
        net = self.fanout_graph()
        plan = ExecutionPlan(net, 4)
        gen = np.random.default_rng(17)
        for n in (4, 1):
            x = gen.standard_normal((n, 6)).astype(np.float32)
            np.testing.assert_array_equal(net.forward(x), plan.run(x))

    def test_fanout_disables_inplace_merge(self):
        plan = ExecutionPlan(self.fanout_graph(), 2)
        modes = {s["layer"]: s["mode"] for s in plan.describe()["steps"]}
        assert modes["act"] == "compute"  # ip1 is read again by sum
        assert modes["prob"] == "inplace"  # head has no other readers

    def test_graphnet_compile_plan_dispatch(self):
        net = self.fanout_graph()
        x = np.random.default_rng(19).standard_normal((2, 6)).astype(np.float32)
        legacy = net.forward(x)
        net.compile_plan(4)
        np.testing.assert_array_equal(net.forward(x), legacy)


# ----------------------------------------------------------------- layout
class TestPlanLayout:
    def test_alias_layers_share_slot_and_skip_compute(self):
        net = Net(lenet5()).materialize(0)  # no alias layers; use a graph
        spec = GraphSpec(
            name="aliasy",
            input_shape=(4,),
            layers=(
                GraphLayerSpec("InnerProduct", "ip", ("input",),
                               {"num_output": 4}),
                GraphLayerSpec("Dropout", "drop", ("ip",)),
                GraphLayerSpec("Softmax", "prob", ("drop",)),
            ),
            output="prob",
        )
        gnet = GraphNet(spec).materialize(1)
        plan = ExecutionPlan(gnet, 2)
        steps = {s["layer"]: s for s in plan.describe()["steps"]}
        assert steps["drop"]["mode"] == "alias"
        assert steps["drop"]["slot"] == steps["ip"]["slot"]

    def test_inplace_never_merges_into_input_slot(self):
        # a net that is nothing but an activation: its output must land in
        # a fresh slot, never over the input slab the executor gathers into
        spec = GraphSpec(
            name="actonly",
            input_shape=(5,),
            layers=(GraphLayerSpec("ReLU", "act", ("input",)),),
            output="act",
        )
        gnet = GraphNet(spec).materialize(0)
        plan = ExecutionPlan(gnet, 2)
        step = plan.describe()["steps"][0]
        assert step["mode"] == "compute"
        x = np.random.default_rng(23).standard_normal((2, 5)).astype(np.float32)
        np.testing.assert_array_equal(gnet.forward(x), plan.run(x))

    def test_plan_envelope_enforced(self):
        net = build_net("pos", materialize=True)
        plan = ExecutionPlan(net, 2)
        with pytest.raises(PlanError):
            plan.input_view(3)
        with pytest.raises(PlanError):
            plan.input_view(0)

    def test_footprint_without_allocation(self):
        # FACE-scale costing must not commit the arena
        net = build_net("face", materialize=False)
        fp = plan_footprint(net, batch=4)
        assert fp["arena_bytes"] > 0 and fp["scratch_bytes"] > 0
        assert fp["total_bytes"] == fp["arena_bytes"] + fp["scratch_bytes"]
        plan = ExecutionPlan(net, 4, allocate=False)
        with pytest.raises(PlanError):
            plan.input_view(1)

    def test_unmaterialized_net_cannot_execute(self):
        net = build_net("pos", materialize=False)
        plan = ExecutionPlan(net, 2)
        with pytest.raises(PlanError):
            plan.execute(1)


# ------------------------------------------------------------- allocation
class TestSteadyStateAllocation:
    def test_dig_plan_is_allocation_free(self):
        net = build_net("dig", materialize=True)
        plan = ExecutionPlan(net, 8)
        peak = measure_steady_state_alloc(plan, batches=[1, 8])
        # interpreter noise is tens of KB; the legacy path's per-call buffer
        # churn is hundreds of KB to MBs.  64 KB cleanly separates the two.
        assert peak < 64 * 1024, f"steady-state allocation {peak} bytes"


# ---------------------------------------------------------------- profiling
class RecordingTimer:
    def __init__(self):
        self.events = []

    def begin(self, layer):
        self.events.append(("begin", layer.name))

    def end(self, layer):
        self.events.append(("end", layer.name))


class TestTimerParity:
    def test_planned_and_legacy_emit_identical_sequences(self):
        net = build_net("dig", materialize=True)
        x = batch_for(net, 2, 29)
        legacy_timer = RecordingTimer()
        net.forward(x, timer=legacy_timer)
        plan = ExecutionPlan(net, 4)
        planned_timer = RecordingTimer()
        plan.run(x, timer=planned_timer)
        assert planned_timer.events == legacy_timer.events


# ----------------------------------------------------------------- registry
class TestRegistryPlanCache:
    @pytest.fixture
    def registry(self):
        reg = ModelRegistry()
        reg.register("dig", build_net("dig", materialize=True))
        return reg

    def test_bucketing_shares_plans(self, registry):
        assert registry.plan("dig", 9) is registry.plan("dig", 16)
        assert registry.plan("dig", 1) is registry.plan("dig", 1)
        assert registry.plan("dig", 1) is not registry.plan("dig", 2)
        assert registry.plan("dig", 9).max_batch == 16

    def test_rejects_bad_batch(self, registry):
        with pytest.raises(ValueError):
            registry.plan("dig", 0)

    def test_unknown_model(self, registry):
        with pytest.raises(KeyError):
            registry.plan("nope", 4)


# ----------------------------------------------------------------- executor
class TestExecutorPlannedPath:
    @pytest.fixture
    def registry(self):
        reg = ModelRegistry()
        reg.register("dig", build_net("dig", materialize=True))
        return reg

    def test_results_match_direct_forward(self, registry):
        net = registry.get("dig")
        x = batch_for(net, 3, 31)
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=4,
                                                          timeout_ms=1.0))
        try:
            out = executor.submit("dig", x)
            np.testing.assert_array_equal(out, net.forward(x))
            out[0, 0] = 123.0  # submit() hands back an owned copy
        finally:
            executor.close()

    def test_concurrent_submits_coalesce_and_match(self, registry):
        net = registry.get("dig")
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=8,
                                                          timeout_ms=50.0))
        # force the queue path: this test pins coalescing, which the
        # batch-1 fast path legitimately skips on an idle model
        executor._fast_off.add("dig")
        gen = np.random.default_rng(37)
        xs = [gen.standard_normal((2,) + tuple(net.input_shape)).astype(np.float32)
              for _ in range(4)]
        results = [None] * 4
        try:
            def work(i):
                results[i] = executor.submit("dig", xs[i])

            threads = [threading.Thread(target=work, args=(i,)) for i in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for x, out in zip(xs, results):
                # coalesced batches run BLAS at a different M than a lone
                # request would, so (as with the legacy executor) this is
                # allclose, not byte-equality — that guarantee holds per
                # batch composition, pinned by the submit()-only tests
                np.testing.assert_allclose(out, net.forward(x), rtol=1e-5)
            assert max(executor.executed_batches["dig"]) > 2  # coalesced
        finally:
            executor.close()

    def test_lease_is_readonly_view_and_release_unblocks(self, registry):
        net = registry.get("dig")
        x = batch_for(net, 2, 41)
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=4,
                                                          timeout_ms=1.0))
        try:
            with executor.submit_lease("dig", x) as lease:
                assert not lease.outputs.flags.writeable
                np.testing.assert_array_equal(lease.outputs, net.forward(x))
            # after release the worker reuses the arena freely
            out2 = executor.submit("dig", x * 2.0)
            np.testing.assert_array_equal(out2, net.forward(x * 2.0))
        finally:
            executor.close()

    def test_oversize_request_falls_back_to_legacy(self, registry):
        net = registry.get("dig")
        x = batch_for(net, 6, 43)  # > max_batch: collector admits it whole
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=4,
                                                          timeout_ms=1.0))
        try:
            out = executor.submit("dig", x)
            np.testing.assert_array_equal(out, net.forward(x))
        finally:
            executor.close()

    def test_wrong_shape_payload_fails_loudly(self, registry):
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=4,
                                                          timeout_ms=1.0))
        try:
            with pytest.raises(ValueError, match="does not match"):
                executor.submit("dig", np.zeros((2, 1, 8, 8), np.float32))
        finally:
            executor.close()

    def test_use_plans_false_serves_legacy(self, registry):
        net = registry.get("dig")
        x = batch_for(net, 2, 47)
        executor = BatchingExecutor(registry, BatchPolicy(max_batch=4,
                                                          timeout_ms=1.0),
                                    use_plans=False)
        try:
            np.testing.assert_array_equal(executor.submit("dig", x),
                                          net.forward(x))
        finally:
            executor.close()
