"""Unit tests for the ASR application: HMM topology, phone-to-word DP, frame
labeling, and the untrained end-to-end path.
"""

import numpy as np
import pytest

from repro.nn import LayerSpec, Net, NetSpec
from repro.tonic import LocalBackend, PHONES, synthesize_words
from repro.tonic.asr import (
    STATES_PER_PHONE,
    AsrApp,
    AsrStream,
    EndpointConfig,
    HmmTopology,
    acoustic_training_set,
    frame_state_labels,
    words_from_phones,
)


def tiny_acoustic_net(num_senones):
    spec = NetSpec("tiny_am", (440,), (
        LayerSpec("InnerProduct", "h", {"num_output": 32}),
        LayerSpec("Sigmoid", "s"),
        LayerSpec("InnerProduct", "out", {"num_output": num_senones}),
        LayerSpec("Softmax", "p"),
    ))
    return Net(spec).materialize(0)


class TestHmmTopology:
    def test_state_count(self):
        topo = HmmTopology()
        assert topo.num_states == len(PHONES) * STATES_PER_PHONE

    def test_left_to_right_structure(self):
        topo = HmmTopology(self_loop=0.6)
        t = topo.log_transitions
        # self loops on every state
        assert np.all(np.isfinite(np.diag(t)))
        # state 0 -> state 1 allowed; 0 -> 2 forbidden
        assert np.isfinite(t[0, 1]) and not np.isfinite(t[0, 2])
        # exit states connect to every phone's entry state
        exit_state = STATES_PER_PHONE - 1
        entries = t[exit_state, ::STATES_PER_PHONE]
        assert np.all(np.isfinite(entries))

    def test_rows_are_normalized_probabilities(self):
        topo = HmmTopology(self_loop=0.7)
        probs = np.exp(topo.log_transitions)
        probs[~np.isfinite(topo.log_transitions)] = 0.0
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-9)

    def test_initial_only_on_entry_states(self):
        topo = HmmTopology()
        init = topo.log_initial
        assert np.all(np.isfinite(init[::STATES_PER_PHONE]))
        assert not np.any(np.isfinite(init[1::STATES_PER_PHONE]))

    def test_rejects_bad_self_loop(self):
        with pytest.raises(ValueError):
            HmmTopology(self_loop=1.0)


class TestWordsFromPhones:
    def test_exact_pronunciations_recovered(self):
        assert words_from_phones(["g", "ow"]) == ["go"]
        assert words_from_phones(["g", "ow", "s", "t", "aa", "b"]) == ["go", "stop"]

    def test_tolerates_one_phone_error(self):
        # 'stop' with its final phone wrong still beats the skip penalty
        assert "stop" in words_from_phones(["s", "t", "aa", "d"])

    def test_tolerates_insertion(self):
        assert words_from_phones(["g", "g", "ow"]) == ["go"]

    def test_empty_input(self):
        assert words_from_phones([]) == []

    def test_garbage_is_skipped_not_hallucinated(self):
        # pure silence-adjacent noise phones produce at most short parses
        out = words_from_phones(["k"])
        assert len(out) <= 1


class TestFrameLabels:
    def test_labels_follow_alignment(self):
        audio, alignment = synthesize_words(["go"], seed=0)
        from repro.tonic.dsp import FrontendConfig, fbank_features
        frames = len(fbank_features(audio))
        labels = frame_state_labels(alignment, frames)
        topo = HmmTopology()
        phones_seen = {topo.phones[l // STATES_PER_PHONE] for l in labels}
        assert {"sil", "g", "ow"} <= phones_seen

    def test_substates_progress_within_phone(self):
        alignment = [("aa", 0, 16000)]  # one long phone
        labels = frame_state_labels(alignment, 98)
        subs = labels % STATES_PER_PHONE
        # early frames are state 0, late frames state 2
        assert subs[0] == 0 and subs[-1] == STATES_PER_PHONE - 1
        assert np.all(np.diff(subs) >= 0)

    def test_training_set_shapes(self):
        utts = [synthesize_words(["go"], seed=i) for i in range(2)]
        feats, labels = acoustic_training_set(utts)
        assert feats.shape[1] == 440
        assert feats.shape[0] == labels.shape[0]
        assert labels.max() < len(PHONES) * STATES_PER_PHONE


class TestAsrApp:
    def test_preprocess_produces_spliced_frames(self):
        app = AsrApp(LocalBackend(tiny_acoustic_net(48)))
        audio, _ = synthesize_words(["go", "left"], seed=1)
        feats = app.preprocess(audio)
        assert feats.shape[1] == 440

    def test_untrained_pipeline_runs_end_to_end(self):
        app = AsrApp(LocalBackend(tiny_acoustic_net(48)))
        audio, _ = synthesize_words(["yes"], seed=2)
        transcript = app.run(audio)
        assert isinstance(transcript.text, str)
        assert np.isfinite(transcript.log_score)

    def test_senone_tying_for_oversized_output(self):
        """A full-size 3483-senone model decodes via modulo tying."""
        app = AsrApp(LocalBackend(tiny_acoustic_net(96)), num_senones=96)
        audio, _ = synthesize_words(["no"], seed=3)
        transcript = app.run(audio)
        assert transcript.phones is not None

    def test_rejects_insufficient_senones(self):
        with pytest.raises(ValueError, match="cover"):
            AsrApp(LocalBackend(tiny_acoustic_net(10)), num_senones=10)

    def test_rejects_bad_priors(self):
        with pytest.raises(ValueError, match="log_priors"):
            AsrApp(LocalBackend(tiny_acoustic_net(48)), log_priors=np.zeros(3))


class TestAsrStreamGolden:
    """Chunked-vs-unary determinism: the streaming decode is a pure
    function of (weights seed, audio seed, chunking), its partials are
    reproducible byte for byte, and its final transcript equals the unary
    :class:`AsrApp` decode of the same audio exactly."""

    def _run_chunked(self, audio, chunk_size):
        app = AsrApp(LocalBackend(tiny_acoustic_net(48)))
        stream = AsrStream(app)
        partials = []
        for start in range(0, len(audio), chunk_size):
            if stream.endpointed:
                break
            partials.append(stream.feed(audio[start:start + chunk_size]))
        return partials, stream.finish()

    def test_final_equals_unary_transcript(self):
        audio, _ = synthesize_words(["go", "stop"], seed=7)
        app = AsrApp(LocalBackend(tiny_acoustic_net(48)))
        unary = app.run(audio)
        _, final = self._run_chunked(audio, 1600)
        assert final["transcript"] == unary.text
        assert final["phones"] == list(unary.phones)
        assert final["log_score"] == unary.log_score  # exact, not approx

    def test_final_invariant_to_chunking(self):
        """Any chunk size yields the identical exact final decode."""
        audio, _ = synthesize_words(["left"], seed=11)
        finals = [self._run_chunked(audio, size)[1]
                  for size in (400, 1600, 7000, len(audio))]
        assert all(f == finals[0] for f in finals[1:])

    def test_partial_sequence_is_deterministic(self):
        audio, _ = synthesize_words(["right", "no"], seed=5)
        first_partials, first_final = self._run_chunked(audio, 2000)
        second_partials, second_final = self._run_chunked(audio, 2000)
        assert first_partials == second_partials
        assert first_final == second_final

    def test_partials_score_each_frame_once(self):
        """Decoded frame counts are monotone and chunk-aligned: no frame
        is re-scored when later chunks arrive."""
        audio, _ = synthesize_words(["yes"], seed=3)
        partials, final = self._run_chunked(audio, 1600)
        frames = [p["frames"] for p in partials]
        assert all(b >= a for a, b in zip(frames, frames[1:]))
        assert final["frames"] >= frames[-1]

    def test_endpoint_fires_on_trailing_silence(self):
        audio, _ = synthesize_words(["go"], seed=2)
        padded = np.concatenate([audio, np.zeros(16000)])
        app = AsrApp(LocalBackend(tiny_acoustic_net(48)))
        stream = AsrStream(app, endpoint=EndpointConfig(silence_ms=200.0))
        for start in range(0, len(padded), 1600):
            result = stream.feed(padded[start:start + 1600])
            if result["endpoint"]:
                break
        assert stream.endpointed
        with pytest.raises(RuntimeError, match="endpointed"):
            stream.feed(np.zeros(100))
        final = stream.finish()
        assert final["endpoint"] is True
