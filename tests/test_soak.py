"""Soak test: a proc-pool fleet under sustained concurrent mixed load.

Eight client threads push 200 stamped requests each (mixed ``pos``/``dig``
traffic) through a real TCP :class:`DjinnServer` whose batching front-end
rides a :class:`ProcPoolExecutor`.  Every response is checked against the
in-process forward of its own stamped input, so a lost, stale, or
cross-wired response is caught by payload — not by count.  The comparison
uses the golden-test tolerance rather than byte equality: the server
coalesces concurrent requests into batches, and BLAS reassociates
reductions differently at different batch widths (~1e-8 drift).  A wrong
payload differs by O(1) — whole different stamped input — so the tight
tolerance loses no detection power.  Bit-exact cross-executor identity at
*matching* batch shapes is pinned separately in ``tests/test_procpool.py``.

After the load drains, the run must leave no residue:

* the weight digest of every served model is unchanged (nothing scribbled
  on the shared read-only segments);
* the shm footprint still equals one copy of the weights (plus per-blob
  alignment slack) — load does not duplicate model state;
* parent RSS growth over the whole soak stays bounded — the copy-free
  slot ring does not leak per-request memory.

Marked ``slow``: this is the longest-running test in the suite and CI runs
it in the dedicated soak/chaos job (``make soak``).
"""

import threading

import numpy as np
import pytest

from repro.core import BatchPolicy, DjinnClient, DjinnServer, ModelRegistry
from repro.core import shm as shmseg
from repro.models import build_spec

CLIENTS = 8
REQUESTS_PER_CLIENT = 200
MODELS = ("pos", "dig")

#: generous bound on parent RSS growth over the soak (bytes); the run moves
#: ~hundreds of MB through the slot ring, so an unbounded per-request leak
#: blows through this immediately while steady-state noise never does
RSS_GROWTH_LIMIT = 80 * 1024 * 1024


def _rss_bytes() -> int:
    with open("/proc/self/status", encoding="ascii") as fh:
        for line in fh:
            if line.startswith("VmRSS:"):
                return int(line.split()[1]) * 1024
    raise RuntimeError("VmRSS not found in /proc/self/status")


def _stamped_input(net, client_id: int, index: int) -> np.ndarray:
    """A payload that names its request: client id and ordinal are baked
    into the tensor, so the only byte-equal response is its own."""
    x = np.full((1,) + net.input_shape, 0.125, dtype=np.float32)
    flat = x.reshape(-1)
    flat[0] = float(client_id + 1)
    flat[1] = float(index + 1)
    return x


@pytest.mark.slow
def test_proc_pool_fleet_survives_concurrent_soak():
    registry = ModelRegistry()
    for seed, name in enumerate(MODELS):
        registry.register_spec(name, build_spec(name), seed=seed)
    nets = {name: registry.get(name) for name in MODELS}

    server = DjinnServer(registry, workers="proc:2",
                         batching=BatchPolicy(max_batch=8, timeout_ms=1.0))
    server.start()
    rss_before = _rss_bytes()
    digests_before = {name: shmseg.weight_digest(net)
                      for name, net in nets.items()}

    failures: list = []
    done = [0] * CLIENTS

    def client_loop(client_id: int) -> None:
        host, port = server.address
        try:
            with DjinnClient(host, port, timeout_s=120.0) as client:
                for i in range(REQUESTS_PER_CLIENT):
                    name = MODELS[(client_id + i) % len(MODELS)]
                    x = _stamped_input(nets[name], client_id, i)
                    out = client.infer(name, x)
                    expected = nets[name].forward(x)
                    if (out.shape != expected.shape
                            or not np.allclose(out, expected,
                                               rtol=1e-4, atol=1e-6)):
                        failures.append(
                            f"client {client_id} request {i} ({name}): "
                            f"response does not match its stamped input")
                        return
                    done[client_id] += 1
        except Exception as exc:  # noqa: BLE001 - any client error fails the soak
            failures.append(f"client {client_id}: {type(exc).__name__}: {exc}")

    try:
        threads = [threading.Thread(target=client_loop, args=(i,),
                                    name=f"soak-client-{i}")
                   for i in range(CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=560)
        assert not any(t.is_alive() for t in threads), "soak clients hung"
        assert failures == []
        assert done == [REQUESTS_PER_CLIENT] * CLIENTS, (
            f"lost requests: {done}")

        # ---- residue checks, while the pool is still up ----------------
        # nothing scribbled on the shared weights
        for name, net in nets.items():
            assert shmseg.weight_digest(net) == digests_before[name], (
                f"{name}: weight digest changed under load")
        # weights still resident exactly once (param bytes + alignment)
        param_bytes = registry.total_param_bytes()
        blob_count = sum(len(shmseg.net_blobs(net)) for net in nets.values())
        assert param_bytes <= registry.shm_bytes() <= (
            param_bytes + 64 * blob_count)
        # no per-request leak in the parent
        growth = _rss_bytes() - rss_before
        assert growth < RSS_GROWTH_LIMIT, (
            f"parent RSS grew {growth / 1e6:.1f} MB over "
            f"{CLIENTS * REQUESTS_PER_CLIENT} requests")
    finally:
        server.stop()
        registry.close_shm()


# --------------------------------------------------------------- streaming
STREAM_CLIENTS = 8
STREAMS_PER_CLIENT = 50
CHUNKS_PER_STREAM = 3


@pytest.mark.slow
def test_stream_soak_leaves_no_sessions_behind():
    """Stream soak: 8 client threads open and close 50 streams each (3
    stamped chunks per stream) against a proc:2-backed server.  Every
    stream's final transcript is checked against the in-process forwards
    of its own chunks, the session table must return to exactly zero, the
    completed-stream counter must equal the stream count, and parent RSS
    growth stays bounded — sessions do not leak memory or table slots."""
    from repro.nn import LayerSpec, Net, NetSpec

    spec = NetSpec("soak_tiny", (8,), (
        LayerSpec("InnerProduct", "h", {"num_output": 16}),
        LayerSpec("Sigmoid", "s"),
        LayerSpec("InnerProduct", "out", {"num_output": 4}),
        LayerSpec("Softmax", "p"),
    ))
    registry = ModelRegistry()
    registry.register("soak_tiny", Net(spec).materialize(0))
    net = registry.get("soak_tiny")

    server = DjinnServer(registry, workers="proc:2",
                         batching=BatchPolicy(max_batch=8, timeout_ms=1.0),
                         session_limit=STREAM_CLIENTS * 2)
    server.start()
    rss_before = _rss_bytes()

    failures: list = []
    completed = [0] * STREAM_CLIENTS

    def stream_loop(client_id: int) -> None:
        host, port = server.address
        try:
            with DjinnClient(host, port, timeout_s=120.0) as client:
                for s in range(STREAMS_PER_CLIENT):
                    stream = client.open_stream("soak_tiny")
                    expected = []
                    for c in range(CHUNKS_PER_STREAM):
                        x = np.full((1, 8), 0.1, dtype=np.float32)
                        x[0, 0] = float(client_id + 1)
                        x[0, 1] = float(s * CHUNKS_PER_STREAM + c + 1)
                        expected.append(int(np.argmax(net.forward(x))))
                        stream.send(x)
                    final = stream.close()
                    if (not final.final
                            or final.data.get("labels") != expected):
                        failures.append(
                            f"client {client_id} stream {s}: transcript "
                            f"{final.data.get('labels')} != {expected}")
                        return
                    completed[client_id] += 1
        except Exception as exc:  # noqa: BLE001 - any error fails the soak
            failures.append(f"client {client_id}: {type(exc).__name__}: {exc}")

    try:
        threads = [threading.Thread(target=stream_loop, args=(i,),
                                    name=f"stream-soak-{i}")
                   for i in range(STREAM_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=560)
        assert not any(t.is_alive() for t in threads), "stream clients hung"
        assert failures == []
        assert completed == [STREAMS_PER_CLIENT] * STREAM_CLIENTS, (
            f"lost streams: {completed}")

        # ---- residue checks -------------------------------------------
        assert server.sessions.count() == 0, "sessions leaked after soak"
        family = server.metrics.get("djinn_streams_total")
        totals = {tuple(lv): child.value for lv, child in family.children()}
        assert totals.get(("soak_tiny", "completed"), 0) == (
            STREAM_CLIENTS * STREAMS_PER_CLIENT)
        assert totals.get(("soak_tiny", "rejected"), 0) == 0
        growth = _rss_bytes() - rss_before
        assert growth < RSS_GROWTH_LIMIT, (
            f"parent RSS grew {growth / 1e6:.1f} MB over "
            f"{STREAM_CLIENTS * STREAMS_PER_CLIENT} streams")
    finally:
        server.stop()
        registry.close_shm()


# ------------------------------------------------------------ dup-heavy
DUP_CLIENTS = 6
DUP_REQUESTS_PER_CLIENT = 150
DUP_FRAC = 0.6


@pytest.mark.slow
def test_dup_heavy_cache_soak_bounded_and_exact():
    """Dup-heavy soak with both caches armed: 6 client threads push a
    shared seeded duplicate stream (60% byte-identical replays, the
    response cache's food) through a gateway with an 8 MiB response cache
    fronting a batching backend with a lossless layer cache.  Every
    response is checked against the in-process forward of its own input
    (lost or cross-served answers are caught by payload), the response
    cache must stay inside its bytes budget while actually hitting, the
    layer cache must report *exact* fidelity (tolerance=0 means every hit
    verified byte-equal), and parent RSS growth stays bounded — neither
    cache may turn duplicate traffic into a leak."""
    from repro.core.duplication import plan_duplicates
    from repro.gateway import GatewayServer
    from repro.nn import LayerCacheConfig

    registry = ModelRegistry()
    registry.register_spec("pos", build_spec("pos"), seed=0)
    net = registry.get("pos")

    total = DUP_CLIENTS * DUP_REQUESTS_PER_CLIENT
    dup_of = plan_duplicates(total, DUP_FRAC, 0xD1A77)

    def input_for(i: int) -> np.ndarray:
        # jitter=0 semantics: a planned duplicate replays its source's
        # exact bytes, so its content key matches at the gateway
        x = np.full((1,) + net.input_shape, 0.25, dtype=np.float32)
        x.reshape(-1)[0] = float(dup_of.get(i, i) + 1)
        return x

    server = DjinnServer(registry,
                         batching=BatchPolicy(max_batch=8, timeout_ms=1.0),
                         layer_cache=LayerCacheConfig(max_entries=1024,
                                                      tolerance=0.0))
    server.start()
    gateway = GatewayServer([server.address], cache_mb=8.0,
                            health_interval_s=30.0)
    gateway.start()
    rss_before = _rss_bytes()

    failures: list = []
    done = [0] * DUP_CLIENTS

    def client_loop(client_id: int) -> None:
        host, port = gateway.address
        try:
            with DjinnClient(host, port, timeout_s=120.0) as client:
                for i in range(DUP_REQUESTS_PER_CLIENT):
                    index = client_id * DUP_REQUESTS_PER_CLIENT + i
                    x = input_for(index)
                    out = client.infer("pos", x)
                    expected = net.forward(x)
                    if (out.shape != expected.shape
                            or not np.allclose(out, expected,
                                               rtol=1e-4, atol=1e-6)):
                        failures.append(
                            f"client {client_id} request {i}: response "
                            f"does not match its own input")
                        return
                    done[client_id] += 1
        except Exception as exc:  # noqa: BLE001 - any error fails the soak
            failures.append(f"client {client_id}: {type(exc).__name__}: {exc}")

    try:
        threads = [threading.Thread(target=client_loop, args=(i,),
                                    name=f"dup-soak-{i}")
                   for i in range(DUP_CLIENTS)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=560)
        assert not any(t.is_alive() for t in threads), "dup-soak clients hung"
        assert failures == []
        assert done == [DUP_REQUESTS_PER_CLIENT] * DUP_CLIENTS, (
            f"lost requests: {done}")

        # ---- residue checks -------------------------------------------
        stats = gateway.cache.stats()
        assert stats["hits"] > 0, "dup-heavy stream never hit the cache"
        assert stats["hits"] + stats["misses"] == total
        assert stats["bytes"] <= gateway.cache.budget_bytes
        layer_cache = server._executor.layer_caches.get("pos")
        assert layer_cache is not None
        assert layer_cache.stats()["fidelity_max"] == 0.0, (
            "lossless layer cache reported non-exact fidelity")
        growth = _rss_bytes() - rss_before
        assert growth < RSS_GROWTH_LIMIT, (
            f"parent RSS grew {growth / 1e6:.1f} MB over {total} requests")
    finally:
        gateway.stop()
        server.stop()
        registry.close_shm()
