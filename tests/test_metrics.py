"""Unit and property tests for the evaluation metrics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tonic.metrics import (
    edit_distance,
    iob_spans,
    span_f1,
    tagging_accuracy,
    word_error_rate,
)


class TestEditDistance:
    @pytest.mark.parametrize("a,b,expected", [
        ([], [], 0),
        (["x"], [], 1),
        (["a", "b"], ["a", "b"], 0),
        (["a", "b", "c"], ["a", "x", "c"], 1),
        (["a", "b"], ["b", "a"], 2),
        ("kitten", "sitting", 3),
    ])
    def test_known_values(self, a, b, expected):
        assert edit_distance(a, b) == expected

    @settings(max_examples=40, deadline=None)
    @given(
        a=st.lists(st.integers(0, 3), max_size=8),
        b=st.lists(st.integers(0, 3), max_size=8),
        c=st.lists(st.integers(0, 3), max_size=8),
    )
    def test_metric_axioms(self, a, b, c):
        """Symmetry, identity, and the triangle inequality."""
        assert edit_distance(a, b) == edit_distance(b, a)
        assert edit_distance(a, a) == 0
        assert edit_distance(a, c) <= edit_distance(a, b) + edit_distance(b, c)

    @settings(max_examples=30, deadline=None)
    @given(a=st.lists(st.integers(0, 3), max_size=8),
           b=st.lists(st.integers(0, 3), max_size=8))
    def test_bounded_by_lengths(self, a, b):
        d = edit_distance(a, b)
        assert abs(len(a) - len(b)) <= d <= max(len(a), len(b))


class TestWer:
    def test_perfect_is_zero(self):
        assert word_error_rate([["go", "left"]], [["go", "left"]]) == 0.0

    def test_one_substitution(self):
        assert word_error_rate([["go", "right"]], [["go", "left"]]) == pytest.approx(0.5)

    def test_can_exceed_one_on_insertions(self):
        assert word_error_rate([["a", "b", "c", "d"]], [["a"]]) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            word_error_rate([["a"]], [])
        with pytest.raises(ValueError):
            word_error_rate([[]], [[]])


class TestTaggingAccuracy:
    def test_counts_tokens_across_sentences(self):
        acc = tagging_accuracy([["A", "B"], ["A"]], [["A", "A"], ["A"]])
        assert acc == pytest.approx(2 / 3)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            tagging_accuracy([["A"]], [["A", "B"]])


class TestIobSpans:
    def test_simple_spans(self):
        tags = ["B-NP", "I-NP", "O", "B-VP"]
        assert iob_spans(tags) == {(0, 2, "NP"), (3, 4, "VP")}

    def test_adjacent_b_tags_split_spans(self):
        assert iob_spans(["B-NP", "B-NP"]) == {(0, 1, "NP"), (1, 2, "NP")}

    def test_orphan_i_starts_a_span(self):
        assert iob_spans(["O", "I-NP", "I-NP"]) == {(1, 3, "NP")}

    def test_type_change_splits(self):
        assert iob_spans(["B-NP", "I-VP"]) == {(0, 1, "NP"), (1, 2, "VP")}

    def test_span_runs_to_end(self):
        assert iob_spans(["B-PP", "I-PP"]) == {(0, 2, "PP")}

    def test_all_outside(self):
        assert iob_spans(["O", "O"]) == set()


class TestSpanF1:
    def test_perfect(self):
        gold = [["B-NP", "I-NP", "O"]]
        result = span_f1(gold, gold)
        assert result.f1 == 1.0

    def test_boundary_error_fails_the_whole_span(self):
        pred = [["B-NP", "O", "O"]]
        gold = [["B-NP", "I-NP", "O"]]
        result = span_f1(pred, gold)
        assert result.f1 == 0.0  # per-token accuracy would be 2/3

    def test_partial_credit_across_spans(self):
        pred = [["B-NP", "O", "B-VP"]]
        gold = [["B-NP", "O", "B-NP"]]
        result = span_f1(pred, gold)
        assert result.precision == pytest.approx(0.5)
        assert result.recall == pytest.approx(0.5)

    def test_empty_predictions(self):
        result = span_f1([["O", "O"]], [["B-NP", "I-NP"]])
        assert result.precision == 0.0 and result.recall == 0.0 and result.f1 == 0.0

    def test_trained_chunker_scores_high_span_f1(self):
        """End-to-end: span F1 on the synthetic chunking task."""
        from repro.models import senna
        from repro.nn import Net, SgdSolver
        from repro.tonic import LocalBackend, Vocabulary, WindowFeaturizer, generate_corpus
        from repro.tonic.nlp import PosApp, ChkApp, TagTransitions, TASK_TAGS, tagging_training_set

        corpus = generate_corpus(250, seed=0)
        test = generate_corpus(40, seed=999)
        vocab = Vocabulary(w for s in corpus for w in s.words)
        featurizer = WindowFeaturizer(vocab)
        nets = {}
        for task in ("pos", "chk"):
            net = Net(senna(task, include_softmax=False)).materialize(0)
            x, y = tagging_training_set(task, corpus, featurizer)
            SgdSolver(net, lr=0.05, momentum=0.9).fit(x, y, epochs=4, batch=32)
            serve = Net(senna(task))
            serve.copy_weights_from(net)
            nets[task] = serve
        pos = PosApp(LocalBackend(nets["pos"]), featurizer,
                     TagTransitions(TASK_TAGS["pos"]).fit([s.pos for s in corpus]))
        chk = ChkApp(LocalBackend(nets["chk"]), featurizer, pos_app=pos,
                     transitions=TagTransitions(TASK_TAGS["chk"]).fit([s.chunks for s in corpus]))
        predicted = [chk.run(s) for s in test]
        gold = [list(s.chunks) for s in test]
        assert span_f1(predicted, gold).f1 > 0.85
