"""Load-generator tests against a live service."""

import numpy as np
import pytest

from repro.core import DjinnServer, ModelRegistry, run_closed_loop_load
from repro.models import senna


@pytest.fixture(scope="module")
def server():
    registry = ModelRegistry()
    registry.register_spec("pos", senna("pos"), seed=0)
    with DjinnServer(registry) as srv:
        yield srv


def pos_input(i: int) -> np.ndarray:
    rng = np.random.default_rng(i)
    return rng.normal(size=(4, 300)).astype(np.float32)


def big_pos_input(i: int) -> np.ndarray:
    # big enough that the GIL-releasing GEMM dominates per-request overhead
    rng = np.random.default_rng(i)
    return rng.normal(size=(256, 300)).astype(np.float32)


class TestClosedLoopLoad:
    def test_counts_and_rates(self, server):
        host, port = server.address
        result = run_closed_loop_load(host, port, "pos", pos_input,
                                      clients=2, requests_per_client=10)
        assert result.requests == 20
        assert result.errors == 0
        assert result.qps > 0
        assert result.inputs_per_s == pytest.approx(result.qps * 4, rel=0.01)
        assert result.p99_latency_s >= result.mean_latency_s

    def test_concurrency_sustains_throughput_and_obeys_littles_law(self, server):
        """Throughput holds up under 4x the clients (no collapse) and the
        closed-loop identity clients ~= qps x latency emerges."""
        host, port = server.address
        one = run_closed_loop_load(host, port, "pos", big_pos_input,
                                   clients=1, requests_per_client=40)
        four = run_closed_loop_load(host, port, "pos", big_pos_input,
                                    clients=4, requests_per_client=40)
        assert four.inputs_per_s > one.inputs_per_s * 0.6
        concurrency = four.qps * four.mean_latency_s
        assert 2.0 < concurrency < 5.0  # ~4 clients in flight

    def test_think_time_lowers_throughput(self, server):
        host, port = server.address
        busy = run_closed_loop_load(host, port, "pos", pos_input,
                                    clients=2, requests_per_client=10)
        idle = run_closed_loop_load(host, port, "pos", pos_input,
                                    clients=2, requests_per_client=10,
                                    think_time_s=0.01)
        assert idle.qps < busy.qps

    def test_errors_counted_not_raised(self, server):
        host, port = server.address
        bad_input = lambda i: np.zeros((1, 7), np.float32)  # noqa: E731 - wrong width
        result = run_closed_loop_load(host, port, "pos", bad_input,
                                      clients=2, requests_per_client=5)
        assert result.errors == 10
        assert result.requests == 0

    def test_validation(self, server):
        host, port = server.address
        with pytest.raises(ValueError):
            run_closed_loop_load(host, port, "pos", pos_input, clients=0)
