"""Load-generator tests against a live service."""

import numpy as np
import pytest

from repro.core import DjinnServer, ModelRegistry, run_closed_loop_load
from repro.models import senna


@pytest.fixture(scope="module")
def server():
    registry = ModelRegistry()
    registry.register_spec("pos", senna("pos"), seed=0)
    with DjinnServer(registry) as srv:
        yield srv


def pos_input(i: int) -> np.ndarray:
    rng = np.random.default_rng(i)
    return rng.normal(size=(4, 300)).astype(np.float32)


def big_pos_input(i: int) -> np.ndarray:
    # big enough that the GIL-releasing GEMM dominates per-request overhead
    rng = np.random.default_rng(i)
    return rng.normal(size=(256, 300)).astype(np.float32)


class TestClosedLoopLoad:
    def test_counts_and_rates(self, server):
        host, port = server.address
        result = run_closed_loop_load(host, port, "pos", pos_input,
                                      clients=2, requests_per_client=10)
        assert result.requests == 20
        assert result.errors == 0
        assert result.qps > 0
        assert result.inputs_per_s == pytest.approx(result.qps * 4, rel=0.01)
        assert result.p99_latency_s >= result.mean_latency_s

    def test_concurrency_sustains_throughput_and_obeys_littles_law(self, server):
        """Throughput holds up under 4x the clients (no collapse) and the
        closed-loop identity clients ~= qps x latency emerges."""
        host, port = server.address
        one = run_closed_loop_load(host, port, "pos", big_pos_input,
                                   clients=1, requests_per_client=40)
        four = run_closed_loop_load(host, port, "pos", big_pos_input,
                                    clients=4, requests_per_client=40)
        assert four.inputs_per_s > one.inputs_per_s * 0.6
        concurrency = four.qps * four.mean_latency_s
        assert 2.0 < concurrency < 5.0  # ~4 clients in flight

    def test_think_time_lowers_throughput(self, server):
        host, port = server.address
        busy = run_closed_loop_load(host, port, "pos", pos_input,
                                    clients=2, requests_per_client=10)
        idle = run_closed_loop_load(host, port, "pos", pos_input,
                                    clients=2, requests_per_client=10,
                                    think_time_s=0.01)
        assert idle.qps < busy.qps

    def test_errors_counted_not_raised(self, server):
        host, port = server.address
        bad_input = lambda i: np.zeros((1, 7), np.float32)  # noqa: E731 - wrong width
        result = run_closed_loop_load(host, port, "pos", bad_input,
                                      clients=2, requests_per_client=5)
        assert result.errors == 10
        assert result.requests == 0

    def test_validation(self, server):
        host, port = server.address
        with pytest.raises(ValueError):
            run_closed_loop_load(host, port, "pos", pos_input, clients=0)


# ---------------------------------------------------------------- open loop
class TestOpenLoopLoad:
    def test_counts_and_attainment(self, server):
        from repro.core import RequestClass, run_open_loop_load

        host, port = server.address
        result = run_open_loop_load(
            host, port, "pos", pos_input, qps=200.0, requests=40,
            classes=(RequestClass(name="slo", deadline_ms=5000.0),),
            connections=8, seed=1)
        assert result.issued == 40
        assert result.completed == 40
        assert result.shed == 0 and result.expired == 0 and result.errors == 0
        # a 5 s SLO against a sub-ms model: everything attains
        assert result.attained == 40
        assert result.attainment == 1.0
        assert result.per_class["slo"].attainment == 1.0
        assert result.p99_latency_s >= result.mean_latency_s > 0.0

    def test_schedule_is_seed_deterministic(self, server):
        """Same seed → same offered arrival trace (the measurement origin),
        regardless of how the service behaves."""
        import random

        rng_a = random.Random(7)
        rng_b = random.Random(7)
        trace_a = [rng_a.expovariate(100.0) for _ in range(50)]
        trace_b = [rng_b.expovariate(100.0) for _ in range(50)]
        assert trace_a == trace_b

    def test_classes_split_by_weight_and_stamp_qos(self, server):
        from repro.core import RequestClass, run_open_loop_load

        host, port = server.address
        classes = (
            RequestClass(name="gold", weight=1.0, deadline_ms=5000.0,
                         priority=5, tenant="gold"),
            RequestClass(name="bulk", weight=3.0),
        )
        result = run_open_loop_load(host, port, "pos", pos_input,
                                    qps=300.0, requests=60, classes=classes,
                                    connections=8, seed=3)
        assert set(result.per_class) == {"gold", "bulk"}
        issued = {name: c.issued for name, c in result.per_class.items()}
        assert sum(issued.values()) == 60
        # 1:3 weights: bulk dominates (seeded draw, loose bound)
        assert issued["bulk"] > issued["gold"]
        # a class with no deadline attains whenever it completes
        bulk = result.per_class["bulk"]
        assert bulk.attained == bulk.completed

    def test_expired_requests_counted_typed(self, server):
        """Impossible deadlines come back as typed expiries, not errors."""
        from repro.core import RequestClass, run_open_loop_load

        host, port = server.address
        result = run_open_loop_load(
            host, port, "pos", pos_input, qps=500.0, requests=20,
            classes=(RequestClass(name="doomed", deadline_ms=0.0001),),
            connections=4, seed=5)
        assert result.expired == 20
        assert result.completed == 0 and result.errors == 0
        assert result.attained == 0

    def test_validation(self, server):
        from repro.core import RequestClass, run_open_loop_load

        host, port = server.address
        with pytest.raises(ValueError, match="qps"):
            run_open_loop_load(host, port, "pos", pos_input, qps=0.0)
        with pytest.raises(ValueError, match="duplicate"):
            run_open_loop_load(host, port, "pos", pos_input, qps=1.0,
                               classes=(RequestClass(name="a"),
                                        RequestClass(name="a")))
        with pytest.raises(ValueError, match="weight"):
            RequestClass(weight=0.0)
        with pytest.raises(ValueError, match="deadline_ms"):
            RequestClass(deadline_ms=-1.0)
