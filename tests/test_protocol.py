"""Unit tests for the DjiNN wire protocol."""

import socket

import numpy as np
import pytest

from repro.core.protocol import (
    APP_VERSION,
    KIND_TENSOR,
    KIND_TEXT,
    KIND_U8,
    MAX_DEADLINE_MS,
    MAX_NAME_BYTES,
    MAX_NDIM,
    MAX_STREAM_ID,
    MAX_TENANT_BYTES,
    QOS_VERSION,
    STREAM_FINAL,
    STREAM_TYPES,
    STREAM_VERSION,
    TRACE_VERSION,
    VERSION,
    Message,
    MessageType,
    ProtocolError,
    encode_message,
    recv_message,
    send_message,
)


@pytest.fixture
def sock_pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def roundtrip(pair, message):
    a, b = pair
    send_message(a, message)
    return recv_message(b)


class TestRoundtrip:
    def test_tensor_message(self, sock_pair, rng):
        tensor = rng.normal(size=(3, 4, 5)).astype(np.float32)
        out = roundtrip(sock_pair, Message(MessageType.INFER_REQUEST, name="imc", tensor=tensor))
        assert out.type == MessageType.INFER_REQUEST
        assert out.name == "imc"
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_tensor_cast_to_float32(self, sock_pair):
        tensor = np.arange(6, dtype=np.float64).reshape(2, 3)
        out = roundtrip(sock_pair, Message(MessageType.INFER_RESPONSE, tensor=tensor))
        assert out.tensor.dtype == np.float32
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_non_contiguous_tensor(self, sock_pair, rng):
        tensor = rng.normal(size=(4, 6)).astype(np.float32)[:, ::2]
        out = roundtrip(sock_pair, Message(MessageType.INFER_RESPONSE, tensor=tensor))
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_text_message(self, sock_pair):
        out = roundtrip(sock_pair, Message(MessageType.ERROR, text="no such model: café"))
        assert out.type == MessageType.ERROR
        assert out.text == "no such model: café"

    def test_empty_message(self, sock_pair):
        out = roundtrip(sock_pair, Message(MessageType.LIST_REQUEST))
        assert out.type == MessageType.LIST_REQUEST
        assert out.tensor is None and out.text == ""

    def test_back_to_back_frames(self, sock_pair):
        a, b = sock_pair
        send_message(a, Message(MessageType.LIST_REQUEST))
        send_message(a, Message(MessageType.STATS_REQUEST))
        assert recv_message(b).type == MessageType.LIST_REQUEST
        assert recv_message(b).type == MessageType.STATS_REQUEST

    def test_large_tensor(self, sock_pair, rng):
        """A payload larger than the kernel socket buffer needs a concurrent
        reader (send from a thread, as a real client/server pair would)."""
        import threading

        tensor = rng.normal(size=(100, 1000)).astype(np.float32)  # ~400KB
        a, b = sock_pair
        sender = threading.Thread(
            target=send_message,
            args=(a, Message(MessageType.INFER_REQUEST, name="x", tensor=tensor)),
        )
        sender.start()
        out = recv_message(b)
        sender.join(timeout=10)
        assert not sender.is_alive()
        np.testing.assert_array_equal(out.tensor, tensor)


class TestTraceContext:
    """The optional version-2 trace extension and its v1 interop."""

    def test_trace_ids_roundtrip(self, sock_pair, rng):
        tensor = rng.normal(size=(2, 3)).astype(np.float32)
        msg = Message(MessageType.INFER_REQUEST, name="pos", tensor=tensor,
                      trace_id=0xDEADBEEFCAFEF00D, span_id=42)
        out = roundtrip(sock_pair, msg)
        assert out.trace_id == 0xDEADBEEFCAFEF00D
        assert out.span_id == 42
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_untraced_frame_is_byte_identical_v1(self, sock_pair):
        """A new sender with no trace context must emit exactly the old
        wire bytes — this is what keeps old receivers working."""
        a, b = sock_pair
        msg = Message(MessageType.INFER_REQUEST, name="dig",
                      tensor=np.zeros((1, 4), np.float32))
        send_message(a, msg)
        frame = b.recv(1 << 16)
        # hand-pack the original v1 layout
        import struct
        expected = struct.pack("<4sBBHB", b"DJNN", VERSION,
                               int(MessageType.INFER_REQUEST), 3, 2)
        expected += struct.pack("<I", 1) + struct.pack("<I", 4)
        expected += struct.pack("<Q", 16) + b"dig" + bytes(16)
        assert frame == expected

    def test_old_client_v1_frame_parses_with_zero_trace(self, sock_pair):
        """Hand-packed v1 frame (an old client) → new receiver: trace
        context reads as absent, everything else intact."""
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", VERSION,
                            int(MessageType.STATS_REQUEST), 0, 0)
        frame += struct.pack("<Q", 0)
        a.sendall(frame)
        out = recv_message(b)
        assert out.type == MessageType.STATS_REQUEST
        assert out.trace_id == 0 and out.span_id == 0

    def test_hand_packed_v2_frame_parses(self, sock_pair):
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", TRACE_VERSION,
                            int(MessageType.LIST_REQUEST), 0, 0)
        frame += struct.pack("<QQ", 7, 9) + struct.pack("<Q", 0)
        a.sendall(frame)
        out = recv_message(b)
        assert out.type == MessageType.LIST_REQUEST
        assert (out.trace_id, out.span_id) == (7, 9)

    def test_traced_error_and_text_frames(self, sock_pair):
        out = roundtrip(sock_pair, Message(MessageType.ERROR, text="boom",
                                           trace_id=1, span_id=2))
        assert (out.trace_id, out.span_id) == (1, 2)
        assert out.text == "boom"

    def test_trace_id_out_of_u64_range_rejected(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="u64"):
            send_message(a, Message(MessageType.LIST_REQUEST, trace_id=1 << 64))
        with pytest.raises(ProtocolError, match="u64"):
            send_message(a, Message(MessageType.LIST_REQUEST,
                                    trace_id=1, span_id=-5))

    def test_metrics_message_types_roundtrip(self, sock_pair):
        assert roundtrip(sock_pair, Message(MessageType.METRICS_REQUEST)).type \
            == MessageType.METRICS_REQUEST
        out = roundtrip(sock_pair, Message(MessageType.METRICS_RESPONSE,
                                           text='{"metrics": {}}'))
        assert out.type == MessageType.METRICS_RESPONSE
        assert out.text == '{"metrics": {}}'


class TestQosContext:
    """The version-3 QoS extension and its v1/v2 interop."""

    def test_qos_fields_roundtrip(self, sock_pair, rng):
        tensor = rng.normal(size=(2, 3)).astype(np.float32)
        msg = Message(MessageType.INFER_REQUEST, name="pos", tensor=tensor,
                      deadline_ms=12.5, priority=3, tenant="alice")
        out = roundtrip(sock_pair, msg)
        assert out.deadline_ms == pytest.approx(12.5)
        assert out.priority == 3
        assert out.tenant == "alice"
        assert out.has_qos
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_qos_with_trace_context(self, sock_pair):
        msg = Message(MessageType.INFER_REQUEST, name="dig",
                      tensor=np.zeros((1, 4), np.float32),
                      trace_id=7, span_id=9, deadline_ms=100.0, priority=-2,
                      tenant="t")
        out = roundtrip(sock_pair, msg)
        assert (out.trace_id, out.span_id) == (7, 9)
        assert (out.deadline_ms, out.priority, out.tenant) == (100.0, -2, "t")

    def test_qos_less_frame_is_byte_identical_v1(self, sock_pair):
        """A QoS-capable sender with no QoS fields must emit exactly the
        old wire bytes — golden-digest compatibility depends on this."""
        import struct
        a, b = sock_pair
        msg = Message(MessageType.INFER_REQUEST, name="dig",
                      tensor=np.zeros((1, 4), np.float32))
        send_message(a, msg)
        frame = b.recv(1 << 16)
        assert frame[4] == VERSION  # not QOS_VERSION
        expected = struct.pack("<4sBBHB", b"DJNN", VERSION,
                               int(MessageType.INFER_REQUEST), 3, 2)
        expected += struct.pack("<I", 1) + struct.pack("<I", 4)
        expected += struct.pack("<Q", 16) + b"dig" + bytes(16)
        assert frame == expected

    def test_traced_qos_less_frame_stays_v2(self, sock_pair):
        a, b = sock_pair
        send_message(a, Message(MessageType.LIST_REQUEST, trace_id=1, span_id=2))
        frame = b.recv(1 << 16)
        assert frame[4] == TRACE_VERSION

    def test_hand_packed_v3_frame_parses(self, sock_pair):
        """A v3 frame built byte by byte from the documented layout."""
        import struct
        a, b = sock_pair
        tenant = b"acme"
        frame = struct.pack("<4sBBHB", b"DJNN", QOS_VERSION,
                            int(MessageType.INFER_REQUEST), 3, 2)
        frame += struct.pack("<QQ", 0, 0)               # trace block (zeros)
        frame += struct.pack("<IbB", 2500, -1, len(tenant))  # QoS block
        frame += struct.pack("<I", 1) + struct.pack("<I", 4)
        frame += struct.pack("<Q", 16) + b"dig" + tenant + bytes(16)
        a.sendall(frame)
        out = recv_message(b)
        assert out.type == MessageType.INFER_REQUEST
        assert out.name == "dig"
        assert out.deadline_ms == pytest.approx(2.5)
        assert out.priority == -1
        assert out.tenant == "acme"
        assert out.tensor.shape == (1, 4)

    def test_tiny_deadline_survives_the_wire(self, sock_pair):
        """A nonzero deadline must never round down to "no deadline": the
        wire floor is 1 microsecond."""
        out = roundtrip(sock_pair, Message(MessageType.INFER_REQUEST,
                                           name="m", deadline_ms=0.0001))
        assert out.deadline_ms == pytest.approx(0.001)  # 1 us
        assert out.has_qos

    def test_deadline_out_of_range_rejected(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="deadline"):
            send_message(a, Message(MessageType.INFER_REQUEST, name="m",
                                    deadline_ms=MAX_DEADLINE_MS * 2))
        with pytest.raises(ProtocolError, match="deadline"):
            send_message(a, Message(MessageType.INFER_REQUEST, name="m",
                                    deadline_ms=-1.0))

    def test_priority_out_of_i8_range_rejected(self, sock_pair):
        a, _ = sock_pair
        for bad in (128, -129):
            with pytest.raises(ProtocolError, match="priority"):
                send_message(a, Message(MessageType.INFER_REQUEST, name="m",
                                        priority=bad))

    def test_tenant_too_long_rejected(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="tenant"):
            send_message(a, Message(MessageType.INFER_REQUEST, name="m",
                                    tenant="x" * (MAX_TENANT_BYTES + 1)))

    def test_max_tenant_roundtrips(self, sock_pair):
        tenant = "t" * MAX_TENANT_BYTES
        out = roundtrip(sock_pair, Message(MessageType.INFER_REQUEST,
                                           name="m", tenant=tenant))
        assert out.tenant == tenant

    def test_qos_rejection_types_roundtrip(self, sock_pair):
        out = roundtrip(sock_pair, Message(MessageType.DEADLINE_EXCEEDED,
                                           text="too late"))
        assert out.type == MessageType.DEADLINE_EXCEEDED
        assert out.text == "too late"
        body = '{"error": "shed", "reason": "predicted_late", "retry_after_ms": 5.0}'
        out = roundtrip(sock_pair, Message(MessageType.OVERLOADED, text=body))
        assert out.type == MessageType.OVERLOADED
        assert out.text == body

    def test_old_receiver_rejects_v3_loudly(self, sock_pair):
        """There is no silent desync path: a peer that has never heard of
        version 3 fails the version check on the first header."""
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", 99,
                            int(MessageType.INFER_REQUEST), 0, 0)
        frame += struct.pack("<Q", 0)
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="version"):
            recv_message(b)


class TestStreamContext:
    """The version-4 stream extension and its v1/v2/v3 interop."""

    def test_stream_frame_types_roundtrip(self, sock_pair, rng):
        chunk = rng.normal(size=(2, 5)).astype(np.float32)
        frames = [
            Message(MessageType.STREAM_OPEN, name="asr", stream_id=3),
            Message(MessageType.STREAM_CHUNK, name="asr", tensor=chunk,
                    stream_id=3, stream_seq=1),
            Message(MessageType.STREAM_RESULT, text='{"partial": "go"}',
                    stream_id=3, stream_seq=1),
            Message(MessageType.STREAM_RESULT, text='{"transcript": "go"}',
                    stream_id=3, stream_seq=2, stream_final=True),
            Message(MessageType.STREAM_CLOSE, name="asr", stream_id=3,
                    stream_seq=2),
            Message(MessageType.SESSION_LIMIT,
                    text='{"error": "full", "limit": 64}', stream_id=3),
        ]
        for msg in frames:
            out = roundtrip(sock_pair, msg)
            assert out.type == msg.type
            assert out.stream_id == msg.stream_id
            assert out.stream_seq == msg.stream_seq
            assert out.stream_final == msg.stream_final
            assert out.text == msg.text
            if msg.tensor is not None:
                np.testing.assert_array_equal(out.tensor, msg.tensor)

    def test_stream_frame_with_trace_and_qos(self, sock_pair, rng):
        chunk = rng.normal(size=(1, 4)).astype(np.float32)
        msg = Message(MessageType.STREAM_CHUNK, name="asr", tensor=chunk,
                      stream_id=9, stream_seq=4, trace_id=0xCAFE, span_id=2,
                      priority=3, tenant="alice")
        out = roundtrip(sock_pair, msg)
        assert (out.trace_id, out.span_id) == (0xCAFE, 2)
        assert (out.priority, out.tenant) == (3, "alice")
        assert (out.stream_id, out.stream_seq) == (9, 4)

    def test_unary_frames_keep_their_pre_stream_versions(self, sock_pair):
        """The minimal-version rule survives v4: plain → 1, traced → 2,
        qos → 3.  This is the no-regression guarantee for every golden
        digest and every old peer."""
        a, b = sock_pair
        cases = [
            (Message(MessageType.INFER_REQUEST, name="dig",
                     tensor=np.zeros((1, 4), np.float32)), VERSION),
            (Message(MessageType.LIST_REQUEST, trace_id=1, span_id=2),
             TRACE_VERSION),
            (Message(MessageType.INFER_REQUEST, name="m", deadline_ms=5.0),
             QOS_VERSION),
            (Message(MessageType.STREAM_OPEN, name="m", stream_id=1),
             STREAM_VERSION),
        ]
        for msg, version in cases:
            send_message(a, msg)
            frame = b.recv(1 << 16)
            assert frame[4] == version

    def test_unary_v1_bytes_unchanged_exact(self, sock_pair):
        """Full byte-for-byte regression of the v1 layout post-v4."""
        import struct
        frame = _capture_frame(Message(MessageType.INFER_REQUEST, name="dig",
                                       tensor=np.zeros((1, 4), np.float32)))
        expected = struct.pack("<4sBBHB", b"DJNN", VERSION,
                               int(MessageType.INFER_REQUEST), 3, 2)
        expected += struct.pack("<I", 1) + struct.pack("<I", 4)
        expected += struct.pack("<Q", 16) + b"dig" + bytes(16)
        assert frame == expected

    def test_encode_message_matches_send_message_bytes(self):
        for msg in (
            Message(MessageType.INFER_REQUEST, name="pos",
                    tensor=np.arange(6, dtype=np.float32).reshape(2, 3)),
            Message(MessageType.STREAM_CHUNK, name="asr",
                    tensor=np.ones((1, 4), np.float32),
                    stream_id=2, stream_seq=7),
        ):
            assert encode_message(msg) == _capture_frame(msg)

    def test_hand_packed_v4_frame_parses(self, sock_pair):
        """A v4 frame built byte by byte from the documented layout."""
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", STREAM_VERSION,
                            int(MessageType.STREAM_CHUNK), 3, 2)
        frame += struct.pack("<QQ", 0, 0)              # trace block (zeros)
        frame += struct.pack("<IbB", 0, 0, 0)          # qos block (zeros)
        frame += struct.pack("<IBI", 5, 0, 2)          # stream block
        frame += struct.pack("<I", 1) + struct.pack("<I", 4)
        frame += struct.pack("<Q", 16) + b"asr" + bytes(16)
        a.sendall(frame)
        out = recv_message(b)
        assert out.type == MessageType.STREAM_CHUNK
        assert (out.stream_id, out.stream_seq, out.stream_final) == (5, 2, False)
        assert out.tensor.shape == (1, 4)

    def test_v4_frame_with_zero_stream_id_rejected(self, sock_pair):
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", STREAM_VERSION,
                            int(MessageType.STREAM_OPEN), 0, 0)
        frame += struct.pack("<QQ", 0, 0) + struct.pack("<IbB", 0, 0, 0)
        frame += struct.pack("<IBI", 0, 0, 0)
        frame += struct.pack("<Q", 0)
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="without a stream id"):
            recv_message(b)

    def test_unknown_stream_flags_rejected(self, sock_pair):
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", STREAM_VERSION,
                            int(MessageType.STREAM_RESULT), 0, 0)
        frame += struct.pack("<QQ", 0, 0) + struct.pack("<IbB", 0, 0, 0)
        frame += struct.pack("<IBI", 1, 0x80, 1)
        frame += struct.pack("<Q", 0)
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="stream flags"):
            recv_message(b)

    def test_stream_type_without_stream_id_rejected_on_send(self, sock_pair):
        a, _ = sock_pair
        for mtype in STREAM_TYPES:
            with pytest.raises(ProtocolError, match="without a stream id"):
                send_message(a, Message(mtype, name="m"))

    def test_stream_fields_on_unary_frame_rejected_on_send(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="non-stream"):
            send_message(a, Message(MessageType.INFER_REQUEST, name="m",
                                    stream_seq=1))
        with pytest.raises(ProtocolError, match="non-stream"):
            send_message(a, Message(MessageType.ERROR, text="x",
                                    stream_final=True))

    def test_stream_id_out_of_u32_range_rejected(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="stream id"):
            send_message(a, Message(MessageType.STREAM_OPEN, name="m",
                                    stream_id=MAX_STREAM_ID + 1))
        with pytest.raises(ProtocolError, match="stream seq"):
            send_message(a, Message(MessageType.STREAM_CHUNK, name="m",
                                    tensor=np.zeros((1, 2), np.float32),
                                    stream_id=1, stream_seq=MAX_STREAM_ID + 1))

    def test_error_frame_can_carry_stream_scope(self, sock_pair):
        """A stream-scoped ERROR (dead stream, live connection) is a v4
        ERROR frame with the stream id attached."""
        out = roundtrip(sock_pair, Message(MessageType.ERROR,
                                           text="unknown or closed stream 7",
                                           stream_id=7))
        assert out.type == MessageType.ERROR
        assert out.stream_id == 7
        assert out.has_stream

    def test_random_stream_messages_roundtrip(self, rng):
        for _ in range(30):
            stream_id = int(rng.integers(1, MAX_STREAM_ID + 1))
            seq = int(rng.integers(0, MAX_STREAM_ID + 1))
            final = bool(rng.random() < 0.3)
            traced = bool(rng.random() < 0.5)
            if rng.random() < 0.5:
                shape = tuple(int(d) for d in rng.integers(1, 4, size=2))
                msg = Message(MessageType.STREAM_CHUNK, name="m",
                              tensor=rng.normal(size=shape).astype(np.float32),
                              stream_id=stream_id, stream_seq=seq,
                              stream_final=final,
                              trace_id=int(rng.integers(1, 1 << 63)) if traced else 0)
            else:
                msg = Message(MessageType.STREAM_RESULT, text='{"n": 1}',
                              stream_id=stream_id, stream_seq=seq,
                              stream_final=final,
                              tenant="t" if rng.random() < 0.5 else "")
            a, b = socket.socketpair()
            try:
                send_message(a, msg)
                out = recv_message(b)
            finally:
                a.close()
                b.close()
            assert (out.stream_id, out.stream_seq, out.stream_final) == \
                (stream_id, seq, final)
            assert out.trace_id == msg.trace_id
            assert out.tenant == msg.tenant


class TestErrors:
    def test_bad_magic(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"HTTP" + bytes(20))
        with pytest.raises(ProtocolError, match="magic"):
            recv_message(b)

    def test_bad_version(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"DJNN" + bytes([99, 1, 0, 0, 0]) + bytes(16))
        with pytest.raises(ProtocolError, match="version"):
            recv_message(b)

    def test_unknown_message_type(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"DJNN" + bytes([1, 200, 0, 0, 0]) + bytes(8))
        with pytest.raises(ProtocolError, match="unknown message type"):
            recv_message(b)

    def test_truncated_frame_raises_connection_error(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"DJNN" + bytes([1]))
        a.close()
        with pytest.raises(ConnectionError):
            recv_message(b)

    def test_dims_body_mismatch(self, sock_pair):
        a, b = sock_pair
        import struct
        # claims a (2, 2) tensor but ships only 4 bytes
        frame = struct.pack("<4sBBHB", b"DJNN", 1, 2, 0, 2)
        frame += struct.pack("<I", 2) + struct.pack("<I", 2)
        frame += struct.pack("<Q", 4) + b"\x00" * 4
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="imply"):
            recv_message(b)

    def test_received_tensor_is_readonly_zero_copy(self, sock_pair):
        # the deserialized tensor is backed by the frame's bytes (no copy),
        # so it is read-only — consumers that need to mutate copy themselves
        out = roundtrip(sock_pair, Message(MessageType.INFER_RESPONSE,
                                           tensor=np.ones((2, 2), np.float32)))
        assert not out.tensor.flags.writeable
        with pytest.raises(ValueError):
            out.tensor[0, 0] = 5.0
        owned = out.tensor.copy()
        owned[0, 0] = 5.0  # the explicit copy is writable


class TestHeaderBounds:
    """A corrupt header must not drive huge reads — it must fail fast."""

    @staticmethod
    def header(name_len=0, ndim=0, mtype=4, version=1, magic=b"DJNN"):
        import struct
        return struct.pack("<4sBBHB", magic, version, mtype, name_len, ndim)

    def test_name_len_over_bound_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall(self.header(name_len=0xFFFF))
        with pytest.raises(ProtocolError, match="name too long"):
            recv_message(b)

    def test_ndim_over_bound_rejected(self, sock_pair):
        a, b = sock_pair
        a.sendall(self.header(ndim=255))
        with pytest.raises(ProtocolError, match="rank too large"):
            recv_message(b)

    def test_bounds_are_inclusive(self, sock_pair):
        """A frame right at the limits still parses (no off-by-one)."""
        msg = Message(MessageType.INFER_REQUEST, name="x" * MAX_NAME_BYTES,
                      tensor=np.zeros((1,) * MAX_NDIM, np.float32))
        out = roundtrip(sock_pair, msg)
        assert out.name == "x" * MAX_NAME_BYTES
        assert out.tensor.shape == (1,) * MAX_NDIM

    def test_send_side_rejects_oversized_name(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="name too long"):
            send_message(a, Message(MessageType.LIST_REQUEST,
                                    name="x" * (MAX_NAME_BYTES + 1)))

    def test_send_side_rejects_oversized_rank(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="rank too large"):
            send_message(a, Message(MessageType.INFER_REQUEST, name="m",
                                    tensor=np.zeros((1,) * (MAX_NDIM + 1), np.float32)))

    def test_fuzzed_headers_never_hang_or_overallocate(self, sock_pair, rng):
        """Random corrupt headers: every outcome is a clean ProtocolError or
        ConnectionError, raised from the header alone (socket then closed)."""
        for _ in range(50):
            a, b = __import__("socket").socketpair()
            try:
                name_len = int(rng.integers(MAX_NAME_BYTES + 1, 0xFFFF + 1))
                ndim = int(rng.integers(MAX_NDIM + 1, 256))
                corrupt = self.header(
                    name_len=name_len if rng.random() < 0.5 else 0,
                    ndim=ndim if rng.random() < 0.5 else 0,
                    mtype=int(rng.integers(0, 256)),
                    version=int(rng.integers(0, 256)),
                    magic=bytes(rng.integers(0, 256, size=4, dtype=np.uint8)),
                )
                a.sendall(corrupt)
                a.close()
                with pytest.raises((ProtocolError, ConnectionError)):
                    recv_message(b)
            finally:
                b.close()


def _capture_frame(message):
    """The exact bytes ``send_message`` puts on the wire for ``message``."""
    a, b = socket.socketpair()
    try:
        send_message(a, message)
        a.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            chunk = b.recv(1 << 16)
            if not chunk:
                return b"".join(chunks)
            chunks.append(chunk)
    finally:
        a.close()
        b.close()


class TestFuzzRoundtrip:
    """Property-based sweeps: arbitrary well-formed messages roundtrip
    exactly, and *every* way of cutting a valid frame short fails typed."""

    def test_random_messages_roundtrip(self, rng):
        """Random name length / rank / dims / payload, with and without the
        v2 trace extension — what goes in comes out, field for field."""
        letters = np.array(list("abcdefghijklmnopqrstuvwxyz_0123456789"))
        types = (MessageType.INFER_REQUEST, MessageType.INFER_RESPONSE,
                 MessageType.ERROR, MessageType.LIST_RESPONSE)
        for _ in range(40):
            mtype = types[int(rng.integers(0, len(types)))]
            name = "".join(rng.choice(letters,
                                      size=int(rng.integers(0, MAX_NAME_BYTES + 1))))
            traced = bool(rng.random() < 0.5)
            trace_id = int(rng.integers(1, 1 << 63)) if traced else 0
            span_id = int(rng.integers(1, 1 << 63)) if traced else 0
            if mtype in (MessageType.INFER_REQUEST, MessageType.INFER_RESPONSE):
                ndim = int(rng.integers(1, MAX_NDIM + 1))
                shape = tuple(int(d) for d in rng.integers(1, 4, size=ndim))
                tensor = rng.normal(size=shape).astype(np.float32)
                msg = Message(mtype, name=name, tensor=tensor,
                              trace_id=trace_id, span_id=span_id)
            else:
                tensor = None
                msg = Message(mtype, name=name,
                              text="".join(rng.choice(letters,
                                                      size=int(rng.integers(0, 64)))),
                              trace_id=trace_id, span_id=span_id)
            a, b = socket.socketpair()
            try:
                send_message(a, msg)
                out = recv_message(b)
            finally:
                a.close()
                b.close()
            assert out.type == msg.type
            assert out.name == msg.name
            assert out.text == msg.text
            assert (out.trace_id, out.span_id) == (trace_id, span_id)
            if tensor is not None:
                np.testing.assert_array_equal(out.tensor, tensor)
            else:
                assert out.tensor is None

    @pytest.mark.parametrize("message", [
        Message(MessageType.INFER_REQUEST, name="pos",
                tensor=np.arange(6, dtype=np.float32).reshape(2, 3)),
        Message(MessageType.INFER_REQUEST, name="pos",
                tensor=np.arange(4, dtype=np.float32).reshape(2, 2),
                trace_id=0xABCDEF, span_id=7),
        Message(MessageType.ERROR, text="model said no"),
        Message(MessageType.STREAM_OPEN, name="asr", stream_id=1),
        Message(MessageType.STREAM_CHUNK, name="asr",
                tensor=np.arange(4, dtype=np.float32).reshape(1, 4),
                stream_id=2, stream_seq=3),
        Message(MessageType.STREAM_RESULT, text='{"partial": "go"}',
                stream_id=2, stream_seq=3, stream_final=True),
        Message(MessageType.STREAM_CLOSE, name="asr", stream_id=2,
                stream_seq=4),
        Message(MessageType.SESSION_LIMIT, text='{"limit": 64}', stream_id=5),
    ], ids=["v1-tensor", "v2-traced-tensor", "text", "v4-open", "v4-chunk",
            "v4-result-final", "v4-close", "v4-session-limit"])
    def test_every_truncation_point_fails_typed(self, message):
        """Cut a valid frame at every possible byte boundary: the receiver
        must raise ProtocolError or ConnectionError each time — never hang,
        never return a bogus message.  A 1-second socket timeout converts a
        would-be hang into a loud failure."""
        frame = _capture_frame(message)
        assert len(frame) > 9  # sanity: magic + version + some header
        for cut in range(len(frame)):
            a, b = socket.socketpair()
            try:
                b.settimeout(1.0)
                a.sendall(frame[:cut])
                a.close()  # EOF right after the truncated prefix
                with pytest.raises((ProtocolError, ConnectionError)):
                    recv_message(b)
            finally:
                b.close()

    def test_full_frame_still_parses_after_truncation_sweep(self):
        """Control for the sweep above: the untruncated frame is valid."""
        msg = Message(MessageType.INFER_REQUEST, name="pos",
                      tensor=np.arange(6, dtype=np.float32).reshape(2, 3))
        a, b = socket.socketpair()
        try:
            a.sendall(_capture_frame(msg))
            out = recv_message(b)
        finally:
            a.close()
            b.close()
        np.testing.assert_array_equal(out.tensor, msg.tensor)


class TestAppPayload:
    """Protocol v5: APP_REQUEST/APP_RESPONSE frames with typed raw payloads."""

    def test_tensor_payload_roundtrip(self, sock_pair, rng):
        raw = rng.normal(size=(2, 3, 4)).astype(np.float32)
        out = roundtrip(sock_pair, Message(
            MessageType.APP_REQUEST, name="imc", tensor=raw,
            payload_kind=KIND_TENSOR))
        assert out.type == MessageType.APP_REQUEST
        assert out.payload_kind == KIND_TENSOR
        assert out.has_app
        assert out.tensor.dtype == np.float32
        np.testing.assert_array_equal(out.tensor, raw)

    def test_u8_payload_roundtrip(self, sock_pair, rng):
        raw = rng.integers(0, 256, size=(1, 28, 28)).astype(np.uint8)
        out = roundtrip(sock_pair, Message(
            MessageType.APP_REQUEST, name="dig", tensor=raw,
            payload_kind=KIND_U8))
        assert out.payload_kind == KIND_U8
        assert out.tensor.dtype == np.uint8
        np.testing.assert_array_equal(out.tensor, raw)

    def test_u8_body_is_one_byte_per_element(self, sock_pair):
        """The whole point of KIND_U8: pixels ship 4x smaller than f32."""
        raw = np.zeros((1, 28, 28), np.uint8)
        frame = _capture_frame(Message(
            MessageType.APP_REQUEST, name="dig", tensor=raw,
            payload_kind=KIND_U8))
        f32 = _capture_frame(Message(
            MessageType.APP_REQUEST, name="dig",
            tensor=raw.astype(np.float32), payload_kind=KIND_TENSOR))
        assert len(f32) - len(frame) == raw.size * 3

    def test_text_payload_roundtrip(self, sock_pair):
        out = roundtrip(sock_pair, Message(
            MessageType.APP_REQUEST, name="pos",
            text="the quick brown fox", payload_kind=KIND_TEXT))
        assert out.payload_kind == KIND_TEXT
        assert out.tensor is None
        assert out.text == "the quick brown fox"

    def test_app_response_roundtrip(self, sock_pair):
        out = roundtrip(sock_pair, Message(
            MessageType.APP_RESPONSE, name="dig",
            text='{"result": [7]}', payload_kind=KIND_TEXT))
        assert out.type == MessageType.APP_RESPONSE
        assert out.text == '{"result": [7]}'

    def test_app_payload_rides_trace_and_qos(self, sock_pair):
        raw = np.ones((2, 2), np.float32)
        out = roundtrip(sock_pair, Message(
            MessageType.APP_REQUEST, name="face", tensor=raw,
            payload_kind=KIND_TENSOR, trace_id=7, span_id=9,
            deadline_ms=25.0, priority=1, tenant="acme"))
        assert (out.trace_id, out.span_id) == (7, 9)
        assert out.deadline_ms == pytest.approx(25.0)
        assert (out.priority, out.tenant) == (1, "acme")

    def test_app_frame_without_kind_rejected_on_send(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="without a payload kind"):
            send_message(a, Message(MessageType.APP_REQUEST, name="dig",
                                    tensor=np.zeros((1, 4), np.float32)))

    def test_text_kind_with_tensor_rejected_on_send(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="text payload kind"):
            send_message(a, Message(MessageType.APP_REQUEST, name="pos",
                                    tensor=np.zeros((1, 4), np.float32),
                                    payload_kind=KIND_TEXT))

    def test_tensor_kind_without_tensor_rejected_on_send(self, sock_pair):
        a, _ = sock_pair
        for kind in (KIND_TENSOR, KIND_U8):
            with pytest.raises(ProtocolError, match="without a tensor body"):
                send_message(a, Message(MessageType.APP_REQUEST, name="imc",
                                        text="x", payload_kind=kind))

    def test_app_payload_on_stream_frame_rejected_on_send(self, sock_pair):
        a, _ = sock_pair
        with pytest.raises(ProtocolError, match="app payload on a stream"):
            send_message(a, Message(MessageType.STREAM_CHUNK, name="asr",
                                    tensor=np.zeros((1, 4), np.float32),
                                    stream_id=1, payload_kind=KIND_TENSOR))

    def test_app_payload_on_stream_frame_rejected_on_recv(self, sock_pair):
        """A hand-built hostile frame: stream id AND payload kind set."""
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", APP_VERSION,
                            int(MessageType.STREAM_CHUNK), 3, 0)
        frame += struct.pack("<QQ", 0, 0) + struct.pack("<IbB", 0, 0, 0)
        frame += struct.pack("<IBI", 5, 0, 1)          # stream block
        frame += struct.pack("<B", KIND_TENSOR)        # payload kind
        frame += struct.pack("<Q", 0) + b"asr"
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="app payload on a stream"):
            recv_message(b)

    def test_hand_packed_v5_frame_parses(self, sock_pair):
        """A v5 frame built byte by byte from the documented layout."""
        import struct
        a, b = sock_pair
        pixels = bytes(range(16))
        frame = struct.pack("<4sBBHB", b"DJNN", APP_VERSION,
                            int(MessageType.APP_REQUEST), 3, 2)
        frame += struct.pack("<QQ", 11, 12)            # trace block
        frame += struct.pack("<IbB", 0, 0, 0)          # qos block (zeros)
        frame += struct.pack("<IBI", 0, 0, 0)          # stream block (zeros)
        frame += struct.pack("<B", KIND_U8)            # payload kind
        frame += struct.pack("<I", 4) + struct.pack("<I", 4)
        frame += struct.pack("<Q", 16) + b"dig" + pixels
        a.sendall(frame)
        out = recv_message(b)
        assert out.type == MessageType.APP_REQUEST
        assert out.payload_kind == KIND_U8
        assert (out.trace_id, out.span_id) == (11, 12)
        np.testing.assert_array_equal(
            out.tensor, np.frombuffer(pixels, np.uint8).reshape(4, 4))

    def test_v5_frame_with_unknown_kind_rejected(self, sock_pair):
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", APP_VERSION,
                            int(MessageType.APP_REQUEST), 3, 0)
        frame += struct.pack("<QQ", 0, 0) + struct.pack("<IbB", 0, 0, 0)
        frame += struct.pack("<IBI", 0, 0, 0)
        frame += struct.pack("<B", 9)                  # bogus kind
        frame += struct.pack("<Q", 1) + b"dig" + b"x"
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="unknown payload kind"):
            recv_message(b)

    def test_u8_dims_body_mismatch_rejected(self, sock_pair):
        import struct
        a, b = sock_pair
        frame = struct.pack("<4sBBHB", b"DJNN", APP_VERSION,
                            int(MessageType.APP_REQUEST), 3, 1)
        frame += struct.pack("<QQ", 0, 0) + struct.pack("<IbB", 0, 0, 0)
        frame += struct.pack("<IBI", 0, 0, 0)
        frame += struct.pack("<B", KIND_U8)
        frame += struct.pack("<I", 8)                  # dims say 8 bytes...
        frame += struct.pack("<Q", 7) + b"dig" + bytes(7)   # ...body has 7
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="imply"):
            recv_message(b)

    def test_pre_v5_frames_byte_identical_under_v5(self, sock_pair):
        """The compatibility contract: adding APP frames changed not one
        byte of any v1-v4 frame.  Minimal-version selection keeps every
        app-less message on its pre-v5 wire version."""
        import struct
        cases = [
            (Message(MessageType.INFER_REQUEST, name="dig",
                     tensor=np.zeros((1, 4), np.float32)), VERSION),
            (Message(MessageType.LIST_REQUEST, trace_id=1, span_id=2),
             TRACE_VERSION),
            (Message(MessageType.INFER_REQUEST, name="m", deadline_ms=5.0),
             QOS_VERSION),
            (Message(MessageType.STREAM_OPEN, name="m", stream_id=1),
             STREAM_VERSION),
        ]
        for msg, version in cases:
            frame = _capture_frame(msg)
            assert frame[4] == version
            # the payload_kind byte exists only on v5 frames: a pre-v5
            # header is exactly header+trace+qos+stream blocks, no more
            head = struct.calcsize("<4sBBHB")
            if version >= TRACE_VERSION:
                head += struct.calcsize("<QQ")
            if version >= QOS_VERSION:
                head += struct.calcsize("<IbB")
            if version >= STREAM_VERSION:
                head += struct.calcsize("<IBI")
            ndim = frame[8]
            name_len = int.from_bytes(frame[6:8], "little")
            body = frame[head + 4 * ndim:]
            body_len = int.from_bytes(body[:8], "little")
            assert len(frame) == head + 4 * ndim + 8 + name_len + body_len \
                + (len(msg.tenant.encode()) if version >= QOS_VERSION else 0)

    def test_app_frame_version_is_5(self, sock_pair):
        frame = _capture_frame(Message(
            MessageType.APP_REQUEST, name="pos", text="hi",
            payload_kind=KIND_TEXT))
        assert frame[4] == APP_VERSION

    def test_encode_message_matches_send_for_app_frames(self):
        for msg in (
            Message(MessageType.APP_REQUEST, name="dig",
                    tensor=np.zeros((1, 28, 28), np.uint8),
                    payload_kind=KIND_U8),
            Message(MessageType.APP_RESPONSE, name="dig",
                    text='{"ok": true}', payload_kind=KIND_TEXT),
        ):
            assert encode_message(msg) == _capture_frame(msg)
