"""Unit tests for the DjiNN wire protocol."""

import socket

import numpy as np
import pytest

from repro.core.protocol import (
    Message,
    MessageType,
    ProtocolError,
    recv_message,
    send_message,
)


@pytest.fixture
def sock_pair():
    a, b = socket.socketpair()
    yield a, b
    a.close()
    b.close()


def roundtrip(pair, message):
    a, b = pair
    send_message(a, message)
    return recv_message(b)


class TestRoundtrip:
    def test_tensor_message(self, sock_pair, rng):
        tensor = rng.normal(size=(3, 4, 5)).astype(np.float32)
        out = roundtrip(sock_pair, Message(MessageType.INFER_REQUEST, name="imc", tensor=tensor))
        assert out.type == MessageType.INFER_REQUEST
        assert out.name == "imc"
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_tensor_cast_to_float32(self, sock_pair):
        tensor = np.arange(6, dtype=np.float64).reshape(2, 3)
        out = roundtrip(sock_pair, Message(MessageType.INFER_RESPONSE, tensor=tensor))
        assert out.tensor.dtype == np.float32
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_non_contiguous_tensor(self, sock_pair, rng):
        tensor = rng.normal(size=(4, 6)).astype(np.float32)[:, ::2]
        out = roundtrip(sock_pair, Message(MessageType.INFER_RESPONSE, tensor=tensor))
        np.testing.assert_array_equal(out.tensor, tensor)

    def test_text_message(self, sock_pair):
        out = roundtrip(sock_pair, Message(MessageType.ERROR, text="no such model: café"))
        assert out.type == MessageType.ERROR
        assert out.text == "no such model: café"

    def test_empty_message(self, sock_pair):
        out = roundtrip(sock_pair, Message(MessageType.LIST_REQUEST))
        assert out.type == MessageType.LIST_REQUEST
        assert out.tensor is None and out.text == ""

    def test_back_to_back_frames(self, sock_pair):
        a, b = sock_pair
        send_message(a, Message(MessageType.LIST_REQUEST))
        send_message(a, Message(MessageType.STATS_REQUEST))
        assert recv_message(b).type == MessageType.LIST_REQUEST
        assert recv_message(b).type == MessageType.STATS_REQUEST

    def test_large_tensor(self, sock_pair, rng):
        """A payload larger than the kernel socket buffer needs a concurrent
        reader (send from a thread, as a real client/server pair would)."""
        import threading

        tensor = rng.normal(size=(100, 1000)).astype(np.float32)  # ~400KB
        a, b = sock_pair
        sender = threading.Thread(
            target=send_message,
            args=(a, Message(MessageType.INFER_REQUEST, name="x", tensor=tensor)),
        )
        sender.start()
        out = recv_message(b)
        sender.join(timeout=10)
        assert not sender.is_alive()
        np.testing.assert_array_equal(out.tensor, tensor)


class TestErrors:
    def test_bad_magic(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"HTTP" + bytes(20))
        with pytest.raises(ProtocolError, match="magic"):
            recv_message(b)

    def test_bad_version(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"DJNN" + bytes([99, 1, 0, 0, 0]) + bytes(16))
        with pytest.raises(ProtocolError, match="version"):
            recv_message(b)

    def test_unknown_message_type(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"DJNN" + bytes([1, 200, 0, 0, 0]) + bytes(8))
        with pytest.raises(ProtocolError, match="unknown message type"):
            recv_message(b)

    def test_truncated_frame_raises_connection_error(self, sock_pair):
        a, b = sock_pair
        a.sendall(b"DJNN" + bytes([1]))
        a.close()
        with pytest.raises(ConnectionError):
            recv_message(b)

    def test_dims_body_mismatch(self, sock_pair):
        a, b = sock_pair
        import struct
        # claims a (2, 2) tensor but ships only 4 bytes
        frame = struct.pack("<4sBBHB", b"DJNN", 1, 2, 0, 2)
        frame += struct.pack("<I", 2) + struct.pack("<I", 2)
        frame += struct.pack("<Q", 4) + b"\x00" * 4
        a.sendall(frame)
        with pytest.raises(ProtocolError, match="imply"):
            recv_message(b)

    def test_received_tensor_is_writable_copy(self, sock_pair):
        out = roundtrip(sock_pair, Message(MessageType.INFER_RESPONSE,
                                           tensor=np.ones((2, 2), np.float32)))
        out.tensor[0, 0] = 5.0  # must not raise (frombuffer would be read-only)
