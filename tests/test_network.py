"""Unit tests for the Net container."""

import numpy as np
import pytest

from repro.nn import LayerSpec, Net, NetSpec
from repro.nn.layers import ShapeError


def cnn_spec():
    return NetSpec("cnn", (1, 8, 8), (
        LayerSpec("Convolution", "conv", {"num_output": 4, "kernel_size": 3, "pad": 1}),
        LayerSpec("ReLU", "relu"),
        LayerSpec("Pooling", "pool", {"kernel_size": 2}),
        LayerSpec("InnerProduct", "fc", {"num_output": 5}),
        LayerSpec("Softmax", "prob"),
    ))


class TestConstruction:
    def test_shape_inference_without_weights(self):
        net = Net(cnn_spec())
        assert net.output_shape == (5,)
        assert not net.materialized
        assert net.param_count() == (4 * 9 + 4) + (5 * 64 + 5)

    def test_shape_error_names_the_offending_layer(self):
        spec = NetSpec("bad", (4,), (
            LayerSpec("Convolution", "conv", {"num_output": 2, "kernel_size": 3}),
        ))
        with pytest.raises(ShapeError, match="conv"):
            Net(spec)

    def test_forward_before_materialize_raises(self):
        net = Net(cnn_spec())
        with pytest.raises(RuntimeError, match="not materialized"):
            net.forward(np.zeros((1, 1, 8, 8)))


class TestForward:
    def test_deterministic_under_seed(self, rng):
        x = rng.normal(size=(2, 1, 8, 8)).astype(np.float32)
        y1 = Net(cnn_spec()).materialize(7).forward(x)
        y2 = Net(cnn_spec()).materialize(7).forward(x)
        np.testing.assert_array_equal(y1, y2)

    def test_different_seeds_differ(self, rng):
        x = rng.normal(size=(1, 1, 8, 8)).astype(np.float32)
        y1 = Net(cnn_spec()).materialize(1).forward(x)
        y2 = Net(cnn_spec()).materialize(2).forward(x)
        assert not np.allclose(y1, y2)

    def test_single_sample_convenience(self, rng):
        net = Net(cnn_spec()).materialize(0)
        x = rng.normal(size=(1, 8, 8)).astype(np.float32)
        assert net.forward(x).shape == (1, 5)

    def test_predict_returns_argmax(self, rng):
        net = Net(cnn_spec()).materialize(0)
        x = rng.normal(size=(3, 1, 8, 8)).astype(np.float32)
        probs = net.forward(x)
        np.testing.assert_array_equal(net.predict(x), probs.argmax(axis=1))

    def test_inference_is_stateless(self, rng):
        """Inference passes must not mutate layer state — this is what makes
        the DjiNN registry's read-only model sharing thread-safe."""
        net = Net(cnn_spec()).materialize(0)
        x = rng.normal(size=(2, 1, 8, 8)).astype(np.float32)
        net.forward(x)
        caches = [getattr(layer, "_cache", None) for layer in net.layers]
        assert all(c is None for c in caches)


class TestWeightSharing:
    def test_copy_weights_shares_arrays(self):
        source = Net(cnn_spec()).materialize(5)
        clone = Net(cnn_spec())
        clone.copy_weights_from(source)
        assert clone.materialized
        for a, b in zip(clone.params(), source.params()):
            assert a.data is b.data  # shared, not copied (read-only registry)

    def test_copy_weights_rejects_mismatched_nets(self):
        other = NetSpec("other", (4,), (LayerSpec("InnerProduct", "fc", {"num_output": 2}),))
        with pytest.raises(ValueError, match="cannot share"):
            Net(cnn_spec()).copy_weights_from(Net(other).materialize(0))


class TestBackwardEndToEnd:
    def test_end_to_end_gradcheck(self, rng):
        """Whole-net backward agrees with finite differences on the loss."""
        from repro.nn import numerical_gradient
        from repro.nn.layers import softmax_cross_entropy

        spec = cnn_spec().without("Softmax")
        net = Net(spec).materialize(3)
        x = rng.normal(size=(2, 1, 8, 8))
        labels = np.array([1, 3])

        logits = net.forward(x, train=True)
        loss, dlogits = softmax_cross_entropy(logits, labels)
        net.zero_grad()
        net.forward(x, train=True)
        dx = net.backward(dlogits)

        num_dx = numerical_gradient(
            lambda inp: softmax_cross_entropy(net.forward(inp), labels)[0], x.copy(), eps=1e-3
        )
        denom = max(1e-6, float(np.abs(num_dx).max()))
        assert float(np.abs(dx - num_dx).max()) / denom < 5e-2

    def test_summary_lists_all_layers(self):
        text = Net(cnn_spec()).summary()
        for name in ("conv", "relu", "pool", "fc", "prob", "total"):
            assert name in text
