"""Batch-size selection tests: the algorithm re-derives Table 3."""

import pytest

from repro.gpusim import app_model
from repro.gpusim.tuning import BatchChoice, batch_sweep, select_batch


class TestSweep:
    def test_sweep_returns_all_candidates(self):
        sweep = batch_sweep(app_model("pos"), (1, 4, 16))
        assert [b for b, _, _ in sweep] == [1, 4, 16]

    def test_qps_matches_appmodel(self):
        model = app_model("imc")
        sweep = dict((b, q) for b, q, _ in batch_sweep(model, (1, 16)))
        assert sweep[16] == pytest.approx(model.gpu_qps(16))


class TestSelection:
    def test_rederives_table3_for_nlp_and_imc(self):
        """The paper's own choices fall out of the sweep + rule."""
        for app, paper_batch in (("imc", 16), ("pos", 64), ("chk", 64), ("ner", 64)):
            choice = select_batch(app_model(app))
            assert choice.batch == paper_batch, (app, choice)

    def test_near_table3_for_dig_and_asr(self):
        """Within one sweep step of the paper's picks."""
        for app, paper_batch in (("dig", 16), ("asr", 2)):
            choice = select_batch(app_model(app))
            assert paper_batch / 2 <= choice.batch <= paper_batch * 2, (app, choice)

    def test_face_diverges_and_why(self):
        """Our model lets FACE keep batching (weights amortize over the
        batch); the paper stopped at 2 — a documented divergence."""
        choice = select_batch(app_model("face"))
        assert choice.batch > 2
        assert choice.latency_s <= app_model("face").cpu_query_time()

    def test_choice_meets_its_own_contract(self):
        for app in ("imc", "dig", "asr", "pos"):
            model = app_model(app)
            choice = select_batch(model, throughput_target=0.85)
            assert isinstance(choice, BatchChoice)
            assert choice.qps >= 0.8 * choice.plateau_qps or choice.batch == 1
            assert choice.latency_s <= model.cpu_query_time() + 1e-9

    def test_tight_latency_budget_forces_small_batches(self):
        model = app_model("imc")
        loose = select_batch(model)
        tight = select_batch(model, latency_budget_s=loose.latency_s / 3)
        assert tight.batch < loose.batch

    def test_impossible_budget_falls_back_to_batch_1(self):
        choice = select_batch(app_model("imc"), latency_budget_s=1e-9)
        assert choice.batch == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            select_batch(app_model("imc"), candidates=())
        with pytest.raises(ValueError):
            select_batch(app_model("imc"), throughput_target=0.0)

    def test_smallest_sufficient_batch_preferred(self):
        """The rule picks the knee, not the plateau's far end."""
        choice = select_batch(app_model("pos"))
        bigger = app_model("pos").gpu_qps(choice.batch * 4)
        assert bigger < choice.qps * 1.2  # barely better, much higher latency
