"""Unit tests for the Tonic applications (local backends)."""

import numpy as np
import pytest

from repro.models import build_net, lenet5, senna
from repro.nn import LayerSpec, Net, NetSpec
from repro.tonic import (
    ChkApp,
    DigApp,
    FaceApp,
    ImcApp,
    LocalBackend,
    PosApp,
    TagTransitions,
    Vocabulary,
    WindowFeaturizer,
    digit_dataset,
    face_images,
    generate_corpus,
    imagenet_like_images,
)
from repro.tonic.nlp import TASK_TAGS


@pytest.fixture(scope="module")
def dig_app():
    return DigApp(LocalBackend(build_net("dig", materialize=True)))


@pytest.fixture(scope="module")
def nlp_setup():
    corpus = generate_corpus(20, seed=0)
    vocab = Vocabulary(w for s in corpus for w in s.words)
    featurizer = WindowFeaturizer(vocab)
    return corpus, featurizer


class TestLocalBackend:
    def test_requires_materialized_net(self):
        with pytest.raises(ValueError, match="materialized"):
            LocalBackend(Net(lenet5()))


class TestDigApp:
    def test_returns_one_prediction_per_image(self, dig_app):
        images, _ = digit_dataset(10, seed=1)
        preds = dig_app.run(images)
        assert len(preds) == 10
        assert all(0 <= p <= 9 for p in preds)

    def test_single_image_accepted(self, dig_app):
        images, _ = digit_dataset(1, seed=1)
        assert len(dig_app.run(images[0])) == 1

    def test_preprocess_pads_to_lenet_retina(self, dig_app):
        images, _ = digit_dataset(3, seed=2)
        batch = dig_app.preprocess(images)
        assert batch.shape == (3, 1, 32, 32)
        assert batch.min() >= -1.0 and batch.max() <= 1.0

    def test_rejects_wrong_shape(self, dig_app):
        with pytest.raises(ValueError, match="28, 28"):
            dig_app.run(np.zeros((2, 1, 30, 30)))

    def test_timing_has_all_stages(self, dig_app):
        images, _ = digit_dataset(5, seed=3)
        _, timing = dig_app.run_timed(images)
        assert timing.dnn_s > 0 and timing.total_s > 0
        assert 0.0 <= timing.dnn_fraction <= 1.0


class TestImcApp:
    @pytest.fixture(scope="class")
    def app(self):
        # a tiny AlexNet-shaped stand-in keeps this test fast
        spec = NetSpec("tiny_imc", (3, 227, 227), (
            LayerSpec("Convolution", "c1", {"num_output": 4, "kernel_size": 11, "stride": 8}),
            LayerSpec("ReLU", "r"),
            LayerSpec("Pooling", "p", {"kernel_size": 4, "stride": 4}),
            LayerSpec("InnerProduct", "fc", {"num_output": 1000}),
            LayerSpec("Softmax", "prob"),
        ))
        return ImcApp(LocalBackend(Net(spec).materialize(0)))

    def test_classification_result_fields(self, app):
        images, _ = imagenet_like_images(1, seed=4)
        result = app.run(images[0])
        assert result.label.startswith("class_")
        assert 0.0 < result.probability <= 1.0
        assert len(result.top5) == 5
        # top5 sorted by probability
        probs = [p for _, p in result.top5]
        assert probs == sorted(probs, reverse=True)

    def test_rejects_batch_input(self, app):
        images, _ = imagenet_like_images(2, seed=4)
        with pytest.raises(ValueError, match="one"):
            app.run(images)

    def test_custom_labels(self):
        spec = NetSpec("t", (3, 227, 227), (
            LayerSpec("Pooling", "p", {"kernel_size": 227}),
            LayerSpec("InnerProduct", "fc", {"num_output": 2}),
            LayerSpec("Softmax", "s"),
        ))
        app = ImcApp(LocalBackend(Net(spec).materialize(0)), labels=["cat", "dog"])
        images, _ = imagenet_like_images(1, seed=1)
        assert app.run(images[0]).label in ("cat", "dog")


class TestFaceApp:
    @pytest.fixture(scope="class")
    def app(self):
        spec = NetSpec("tiny_face", (3, 152, 152), (
            LayerSpec("Pooling", "p", {"kernel_size": 8, "stride": 8}),
            LayerSpec("InnerProduct", "fc", {"num_output": 83}),
            LayerSpec("Softmax", "prob"),
        ))
        return FaceApp(LocalBackend(Net(spec).materialize(0)))

    def test_identification(self, app):
        faces, _ = face_images(1, seed=0)
        result = app.run(faces[0])
        assert result.identity.startswith("celebrity_")
        assert 0 <= result.index < 83

    def test_identity_images_are_stable_per_identity(self):
        a, la = face_images(4, num_identities=3, seed=1)
        b, lb = face_images(4, num_identities=3, seed=2)
        # same identity from different seeds shares geometry: high correlation
        for i, j in [(i, j) for i in range(4) for j in range(4) if la[i] == lb[j]]:
            corr = np.corrcoef(a[i].ravel(), b[j].ravel())[0, 1]
            assert corr > 0.5
            break


class TestNlpApps:
    def test_pos_emits_valid_tags(self, nlp_setup):
        corpus, featurizer = nlp_setup
        app = PosApp(LocalBackend(build_net("pos", materialize=True)), featurizer)
        tags = app.run(list(corpus[0].words))
        assert len(tags) == len(corpus[0].words)
        assert all(t in TASK_TAGS["pos"] for t in tags)

    def test_accepts_string_and_tagged_sentence(self, nlp_setup):
        corpus, featurizer = nlp_setup
        app = PosApp(LocalBackend(build_net("pos", materialize=True)), featurizer)
        assert len(app.run("the quick fox")) == 3
        assert len(app.run(corpus[0])) == len(corpus[0])

    def test_empty_sentence_rejected(self, nlp_setup):
        _, featurizer = nlp_setup
        app = PosApp(LocalBackend(build_net("pos", materialize=True)), featurizer)
        with pytest.raises(ValueError, match="at least one word"):
            app.run([])

    def test_chk_issues_chained_pos_request(self, nlp_setup):
        corpus, featurizer = nlp_setup
        calls = []

        class SpyBackend(LocalBackend):
            def infer(self, model, inputs):
                calls.append(model)
                return super().infer(model, inputs)

        pos_net = build_net("pos", materialize=True)
        chk_net = build_net("chk", materialize=True)

        class DualBackend:
            def infer(self, model, inputs):
                calls.append(model)
                net = pos_net if model == "pos" else chk_net
                return net.forward(inputs)

        backend = DualBackend()
        pos = PosApp(backend, featurizer)
        chk = ChkApp(backend, featurizer, pos_app=pos)
        tags = chk.run(list(corpus[0].words))
        assert calls == ["pos", "chk"]  # POS request precedes CHK (paper §3.2.3)
        assert all(t in TASK_TAGS["chk"] for t in tags)

    def test_transition_model_fitting_shifts_decisions(self, nlp_setup):
        corpus, _ = nlp_setup
        trans = TagTransitions(TASK_TAGS["pos"]).fit([s.pos for s in corpus])
        # determiners are never sentence-internal predecessors of determiners
        dt = trans.index["DT"]
        nn = trans.index["NN"]
        assert trans.log_trans[dt, nn] > trans.log_trans[dt, dt]

    def test_unknown_task_rejected(self, nlp_setup):
        _, featurizer = nlp_setup
        from repro.tonic.nlp import NlpApp
        with pytest.raises(ValueError, match="known"):
            NlpApp("srl", LocalBackend(build_net("pos", materialize=True)), featurizer)
