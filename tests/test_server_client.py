"""Integration tests: the DjiNN TCP service end-to-end."""

import threading

import numpy as np
import pytest

from repro.core import (
    BatchPolicy,
    DjinnClient,
    DjinnServer,
    DjinnServiceError,
    ModelRegistry,
    RemoteBackend,
)
from repro.models import lenet5, senna
from repro.tonic import DigApp, digit_dataset


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register_spec("dig", lenet5(), seed=0)
    reg.register_spec("pos", senna("pos"), seed=1)
    reg.register_spec("chk", senna("chk"), seed=2)
    return reg


@pytest.fixture
def server(registry):
    with DjinnServer(registry) as srv:
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with DjinnClient(host, port) as cli:
        yield cli


class TestBasicService:
    def test_list_models(self, client):
        assert client.list_models() == ["chk", "dig", "pos"]

    def test_infer_matches_local_forward(self, client, registry, rng):
        x = rng.normal(size=(4, 1, 32, 32)).astype(np.float32)
        remote = client.infer("dig", x)
        local = registry.get("dig").forward(x)
        np.testing.assert_allclose(remote, local, rtol=1e-5)

    def test_multiple_models_on_one_connection(self, client, rng):
        assert client.infer("dig", rng.normal(size=(1, 1, 32, 32))).shape == (1, 10)
        assert client.infer("pos", rng.normal(size=(5, 300))).shape == (5, 45)

    def test_unknown_model_error(self, client):
        with pytest.raises(DjinnServiceError, match="not loaded"):
            client.infer("asr", np.zeros((1, 440), np.float32))

    def test_wrong_shape_error_and_connection_survives(self, client, rng):
        with pytest.raises(DjinnServiceError, match="expects inputs"):
            client.infer("dig", np.zeros((1, 3, 32, 32), np.float32))
        # the connection keeps working after an application-level error
        assert client.infer("dig", rng.normal(size=(1, 1, 32, 32))).shape == (1, 10)

    def test_stats_accumulate(self, client, rng):
        before = client.stats().get("pos", {}).get("requests", 0)
        client.infer("pos", rng.normal(size=(2, 300)))
        after = client.stats()["pos"]["requests"]
        assert after == before + 1


class TestConcurrency:
    def test_parallel_clients(self, server, registry, rng):
        host, port = server.address
        inputs = rng.normal(size=(8, 3, 300)).astype(np.float32)
        expected = [registry.get("pos").forward(x) for x in inputs]
        results = [None] * 8

        def worker(i):
            with DjinnClient(host, port) as cli:
                results[i] = cli.infer("pos", inputs[i])

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for got, want in zip(results, expected):
            np.testing.assert_allclose(got, want, rtol=1e-5)

    def test_server_with_batching_coalesces_concurrent_load(self, registry, rng):
        with DjinnServer(registry, batching=BatchPolicy(max_batch=16, timeout_ms=10.0)) as srv:
            host, port = srv.address
            outs = [None] * 6

            def worker(i):
                with DjinnClient(host, port) as cli:
                    outs[i] = cli.infer("pos", np.full((1, 300), float(i), np.float32))

            threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for i in range(6):
                expected = registry.get("pos").forward(np.full((1, 300), float(i), np.float32))
                np.testing.assert_allclose(outs[i], expected, rtol=1e-5)


class TestLifecycle:
    def test_port_zero_picks_free_port(self, registry):
        with DjinnServer(registry) as a, DjinnServer(registry) as b:
            assert a.address[1] != b.address[1]

    def test_double_start_rejected(self, registry):
        srv = DjinnServer(registry).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                srv.start()
        finally:
            srv.stop()

    def test_stop_is_idempotent(self, registry):
        srv = DjinnServer(registry).start()
        srv.stop()
        srv.stop()

    def test_shutdown_via_client(self, registry):
        srv = DjinnServer(registry).start()
        host, port = srv.address
        client = DjinnClient(host, port)
        client.shutdown_server()
        import time
        deadline = time.time() + 5
        while srv._running.is_set() and time.time() < deadline:
            time.sleep(0.01)
        assert not srv._running.is_set()

    def test_address_before_start_raises(self, registry):
        with pytest.raises(RuntimeError, match="not started"):
            DjinnServer(registry).address


class TestRemoteBackend:
    def test_tonic_app_over_the_wire(self, client):
        """A Tonic app runs unchanged against the live service (Fig 3)."""
        app = DigApp(RemoteBackend(client))
        images, _ = digit_dataset(5, seed=9)
        preds = app.run(images)
        assert len(preds) == 5

    def test_remote_equals_local_backend(self, client, registry):
        from repro.tonic import LocalBackend

        images, _ = digit_dataset(4, seed=11)
        remote = DigApp(RemoteBackend(client)).run(images)
        local = DigApp(LocalBackend(registry.get("dig"))).run(images)
        assert remote == local
