"""Unit tests for softmax and the fused softmax-cross-entropy loss."""

import numpy as np
import pytest

from repro.nn import check_layer_gradients, numerical_gradient
from repro.nn.layers import ShapeError, SoftmaxLayer, softmax, softmax_cross_entropy


class TestSoftmaxFunction:
    def test_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(8, 10)), axis=1)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)
        assert np.all(probs > 0)

    def test_shift_invariance(self, rng):
        x = rng.normal(size=(3, 5))
        np.testing.assert_allclose(softmax(x), softmax(x + 1000.0), rtol=1e-6)

    def test_stable_at_large_magnitudes(self):
        probs = softmax(np.array([[1e4, 0.0, -1e4]]))
        assert not np.any(np.isnan(probs))
        np.testing.assert_allclose(probs[0, 0], 1.0)

    def test_preserves_argmax(self, rng):
        x = rng.normal(size=(20, 7))
        np.testing.assert_array_equal(np.argmax(softmax(x), 1), np.argmax(x, 1))


class TestSoftmaxLayer:
    def test_forward_normalizes(self, rng):
        layer = SoftmaxLayer("prob")
        layer.setup((6,))
        y = layer.forward(rng.normal(size=(4, 6)))
        np.testing.assert_allclose(y.sum(axis=1), 1.0, rtol=1e-6)

    def test_jacobian_matches_numerical(self, rng):
        layer = SoftmaxLayer("prob")
        layer.setup((5,))
        errors = check_layer_gradients(layer, rng.normal(size=(2, 5)), eps=1e-5)
        assert errors["input"] < 1e-4


class TestCrossEntropy:
    def test_loss_value_for_uniform_logits(self):
        logits = np.zeros((4, 10), dtype=np.float32)
        labels = np.array([0, 3, 5, 9])
        loss, _ = softmax_cross_entropy(logits, labels)
        np.testing.assert_allclose(loss, np.log(10), rtol=1e-6)

    def test_perfect_prediction_has_near_zero_loss(self):
        logits = np.full((2, 4), -100.0, dtype=np.float32)
        logits[0, 1] = logits[1, 2] = 100.0
        loss, _ = softmax_cross_entropy(logits, np.array([1, 2]))
        assert loss < 1e-6

    def test_gradient_matches_numerical(self, rng):
        logits = rng.normal(size=(3, 5))
        labels = np.array([1, 0, 4])
        _, grad = softmax_cross_entropy(logits.astype(np.float32), labels)
        num = numerical_gradient(
            lambda z: softmax_cross_entropy(z, labels)[0], logits.copy(), eps=1e-4
        )
        np.testing.assert_allclose(grad, num, rtol=1e-2, atol=1e-4)

    def test_gradient_rows_sum_to_zero(self, rng):
        _, grad = softmax_cross_entropy(rng.normal(size=(6, 8)).astype(np.float32),
                                        np.zeros(6, dtype=int))
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-6)

    def test_rejects_mismatched_labels(self):
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((3, 4)), np.zeros(2, dtype=int))
        with pytest.raises(ShapeError):
            softmax_cross_entropy(np.zeros((3,)), np.zeros(3, dtype=int))
