"""WSC design provisioning and the Figure 15 / Figure 16 claims."""

import pytest

from repro.wsc import (
    IMAGE,
    MIXED,
    NLP,
    PCIE3_10GBE,
    QPI_400GBE,
    Workload,
    WscDesigner,
    future_network_study,
    tco_sweep,
)


@pytest.fixture(scope="module")
def designer():
    return WscDesigner()


class TestWorkloads:
    def test_table5_compositions(self):
        assert MIXED.apps == ("imc", "dig", "face", "asr", "pos", "chk", "ner")
        assert IMAGE.apps == ("imc", "dig", "face")
        assert NLP.apps == ("pos", "chk", "ner")

    def test_equal_shares(self):
        shares = MIXED.shares(0.7)
        assert all(s == pytest.approx(0.1) for s in shares.values())

    def test_share_validation(self):
        with pytest.raises(ValueError):
            MIXED.shares(1.5)
        with pytest.raises(ValueError):
            Workload("empty", ())


class TestProvisioning:
    def test_cpu_only_server_count_fixed(self, designer):
        result = designer.cpu_only(MIXED, 0.5)
        assert result.inventory.beefy_servers == designer.total_servers
        assert result.inventory.gpus == 0

    def test_targets_scale_with_dnn_fraction(self, designer):
        low = designer.service_targets(MIXED, 0.1)
        high = designer.service_targets(MIXED, 1.0)
        for app in low:
            assert high[app] == pytest.approx(10 * low[app])

    def test_integrated_buys_gpus_in_dozens(self, designer):
        result = designer.integrated(IMAGE, 0.9)
        gpu_servers = sum(
            1 for plan in result.plans.values() for _ in range(int(plan.servers))
        )
        assert result.inventory.gpus % 12 == 0
        assert result.inventory.gpus >= 12

    def test_disaggregated_provisions_gpus_exactly(self, designer):
        result = designer.disaggregated(IMAGE, 0.9)
        # far fewer GPUs than integrated's 12-per-server bundles at this point
        integrated = designer.integrated(IMAGE, 0.9)
        assert result.inventory.gpus <= integrated.inventory.gpus
        assert result.inventory.wimpy_servers > 0
        assert result.inventory.nics >= 16 * result.inventory.wimpy_servers

    def test_nlp_strands_integrated_gpus(self, designer):
        """Paper §6.3: 'NLP services can saturate only a subset of those
        available GPUs because they are bandwidth-limited by PCIe'."""
        result = designer.integrated(NLP, 1.0)
        for plan in result.plans.values():
            assert plan.gpus_per_server < 12

    def test_image_services_fill_integrated_servers(self, designer):
        result = designer.integrated(IMAGE, 1.0)
        for app in ("imc", "face"):
            assert result.plans[app].gpus_per_server == 12

    def test_prepost_retention_adds_beefy_servers_for_asr(self, designer):
        with_pp = designer.disaggregated(MIXED, 1.0)
        no_pp = WscDesigner(include_prepost=False).disaggregated(MIXED, 1.0)
        assert with_pp.inventory.beefy_servers > no_pp.inventory.beefy_servers

    def test_zero_fraction_designs_collapse_to_cpu_only(self, designer):
        for build in (designer.integrated, designer.disaggregated):
            result = build(MIXED, 0.0)
            assert result.inventory.gpus == 0
            assert result.total_tco == pytest.approx(
                designer.cpu_only(MIXED, 0.0).total_tco
            )

    def test_total_servers_validation(self):
        with pytest.raises(ValueError):
            WscDesigner(total_servers=0)


class TestFig15Claims:
    @pytest.fixture(scope="class")
    def sweeps(self):
        fractions = (0.1, 0.3, 0.5, 0.72, 0.9, 1.0)
        return {wl.name: tco_sweep(wl, fractions) for wl in (MIXED, IMAGE, NLP)}

    def test_gpu_designs_win_everywhere_above_10pct(self, sweeps):
        for name, points in sweeps.items():
            for p in points[1:]:
                assert p.disaggregated < 1.0, (name, p.dnn_fraction)

    def test_improvement_grows_with_dnn_share(self, sweeps):
        for name, points in sweeps.items():
            dis = [p.disaggregated for p in points]
            assert all(b <= a * 1.02 for a, b in zip(dis, dis[1:])), name

    def test_mixed_reaches_multiples_over_cpu_only(self, sweeps):
        best = 1.0 / sweeps["MIXED"][-1].disaggregated
        assert best > 2.5  # paper reports 4-20x; see EXPERIMENTS.md

    def test_nlp_improvement_capped_near_4x(self, sweeps):
        """Fig 15c: 'a maximum improvement of 4x, as opposed to 20x'."""
        best = 1.0 / sweeps["NLP"][-1].disaggregated
        assert 1.5 < best < 5.0

    def test_nlp_improves_less_than_image(self, sweeps):
        nlp_best = 1.0 / sweeps["NLP"][-1].disaggregated
        image_best = 1.0 / sweeps["IMAGE"][-1].disaggregated
        assert nlp_best < image_best

    def test_disagg_beats_integrated_for_mixed_and_nlp_at_high_share(self, sweeps):
        for name in ("MIXED", "NLP"):
            p = sweeps[name][-1]
            assert p.disaggregated < p.integrated, name

    def test_image_crossover_integrated_wins_at_full_dnn(self, sweeps):
        """Fig 15b: past the crossover the integrated design is cheaper."""
        p = sweeps["IMAGE"][-1]
        assert p.integrated < p.disaggregated

    def test_image_disagg_wins_at_low_dnn_share(self, sweeps):
        p = sweeps["IMAGE"][0]
        assert p.disaggregated <= p.integrated * 1.01


class TestFig16Claims:
    @pytest.fixture(scope="class")
    def studies(self):
        return {wl.name: future_network_study(wl) for wl in (MIXED, NLP)}

    def test_performance_multipliers_increase_with_bandwidth(self, studies):
        for name, points in studies.items():
            perf = [p.performance for p in points]
            assert perf[0] == pytest.approx(1.0)
            assert perf[0] < perf[1] < perf[2], name

    def test_nlp_reaches_about_4_5x(self, studies):
        """Intro: 'performance improvements of up to 4.5x over
        bandwidth-constrained designs'."""
        best = studies["NLP"][-1].performance
        assert 3.5 < best < 5.5

    def test_cpu_only_cost_scales_with_performance(self, studies):
        for name, points in studies.items():
            base = points[0].breakdowns["cpu_only"].total
            for p in points[1:]:
                assert p.breakdowns["cpu_only"].total == pytest.approx(
                    base * ((1 - 1.0) + p.performance), rel=0.01
                ), name

    def test_disagg_growth_is_network_heavy(self, studies):
        """Paper: 'growth in TCO for the Disaggregated design stems
        primarily from increased networking costs'."""
        for name, points in studies.items():
            base = points[0].breakdowns["disaggregated"]
            qpi = points[-1].breakdowns["disaggregated"]
            network_growth = qpi.network / base.network
            server_growth = qpi.servers / base.servers
            assert network_growth > server_growth, name

    def test_gpu_designs_stay_cheaper_than_cpu_only(self, studies):
        for name, points in studies.items():
            for p in points:
                assert p.breakdowns["disaggregated"].total < p.breakdowns["cpu_only"].total
                assert p.breakdowns["integrated"].total < p.breakdowns["cpu_only"].total
