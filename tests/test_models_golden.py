"""Seeded golden-output regression tests for the model zoo.

Each app's net is materialized from seed 0 and run on one seeded input;
the checked-in digests (``tests/golden/model_outputs.json``) pin the
output shape, argmax, probability mass, and the first few output values.
Any change to layer math, weight initialization, or the specs themselves
shows up here as a concrete numeric diff instead of a silent drift.

Values are compared with a small relative tolerance rather than byte
equality so the goldens survive BLAS/platform reassociation differences.
To regenerate after an *intentional* change, rerun the recipe below and
review the diff:

    net = build_net(app, materialize=True, seed=SEED)
    x = np.random.default_rng(INPUT_SEED).normal(size=(1,) + net.input_shape)
    out = net.forward(x.astype(np.float32))
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.models import build_net, model_info

GOLDEN_PATH = Path(__file__).parent / "golden" / "model_outputs.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: weight seed / input seed baked into the digests
SEED = 0
INPUT_SEED = 0xD1A77

RTOL = 1e-4
ATOL = 1e-6


def _forward(app):
    net = build_net(app, materialize=True, seed=SEED)
    rng = np.random.default_rng(INPUT_SEED)
    x = rng.normal(size=(1,) + net.input_shape).astype(np.float32)
    return net, net.forward(x)


@pytest.mark.parametrize("app", sorted(GOLDEN))
class TestGoldenOutputs:
    def test_output_matches_digest(self, app):
        golden = GOLDEN[app]
        net, out = _forward(app)
        assert list(net.input_shape) == golden["input_shape"]
        assert list(out.shape) == golden["output_shape"]
        flat = out.reshape(-1)
        assert int(flat.argmax()) == golden["argmax"]
        assert float(flat.sum()) == pytest.approx(golden["sum"], rel=RTOL)
        np.testing.assert_allclose(
            flat[: len(golden["sample"])], golden["sample"],
            rtol=RTOL, atol=ATOL,
            err_msg=f"{app}: seeded forward drifted from checked-in golden; "
                    f"if intentional, regenerate tests/golden/model_outputs.json")

    def test_forward_is_deterministic(self, app):
        _, first = _forward(app)
        _, second = _forward(app)
        np.testing.assert_array_equal(first, second)


def test_golden_covers_the_paper_zoo():
    """The digests pin every network family from Table 1: AlexNet (imc),
    LeNet (dig), DeepFace (face), Kaldi (asr), SENNA (pos)."""
    assert sorted(GOLDEN) == ["asr", "dig", "face", "imc", "pos"]
    for app in GOLDEN:
        assert model_info(app) is not None
