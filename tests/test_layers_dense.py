"""Unit tests for the inner-product layer."""

import numpy as np
import pytest

from repro.nn import check_layer_gradients
from repro.nn.layers import InnerProductLayer, ShapeError


def make_layer(num_output=7, in_shape=(5,), bias=True, seed=0):
    layer = InnerProductLayer("fc", num_output=num_output, bias=bias)
    layer.setup(in_shape)
    layer.materialize(np.random.default_rng(seed))
    return layer


class TestSetup:
    def test_flattens_any_input_shape(self):
        layer = InnerProductLayer("fc", num_output=10)
        assert layer.setup((3, 4, 5)) == (10,)
        assert layer.fan_in == 60
        assert layer.weight.shape == (10, 60)

    def test_bias_optional(self):
        layer = InnerProductLayer("fc", num_output=4, bias=False)
        layer.setup((6,))
        assert len(layer.params) == 1

    def test_rejects_bad_num_output(self):
        with pytest.raises(ValueError):
            InnerProductLayer("fc", num_output=0)


class TestForward:
    def test_matches_manual_matmul(self, rng):
        layer = make_layer(3, (4,))
        x = rng.normal(size=(6, 4)).astype(np.float32)
        y = layer.forward(x)
        expected = x @ layer.weight.data.T + layer.bias_blob.data
        np.testing.assert_allclose(y, expected, rtol=1e-5)

    def test_multidim_input_flattened(self, rng):
        layer = make_layer(3, (2, 3))
        x = rng.normal(size=(4, 2, 3)).astype(np.float32)
        y = layer.forward(x)
        assert y.shape == (4, 3)
        expected = x.reshape(4, 6) @ layer.weight.data.T + layer.bias_blob.data
        np.testing.assert_allclose(y, expected, rtol=1e-5)

    def test_shape_validation(self, rng):
        layer = make_layer(3, (4,))
        with pytest.raises(ShapeError, match="expected input"):
            layer.forward(rng.normal(size=(2, 5)))

    def test_unmaterialized_raises(self):
        layer = InnerProductLayer("fc", num_output=2)
        layer.setup((3,))
        with pytest.raises(RuntimeError, match="not materialized"):
            layer.forward(np.zeros((1, 3)))


class TestBackward:
    def test_gradients_match_numerical(self, rng):
        layer = make_layer(4, (3,))
        errors = check_layer_gradients(layer, rng.normal(size=(3, 3)))
        assert all(err < 1e-4 for err in errors.values()), errors

    def test_gradients_accumulate_across_calls(self, rng):
        layer = make_layer(2, (3,))
        x = rng.normal(size=(2, 3)).astype(np.float32)
        dy = np.ones((2, 2), dtype=np.float32)
        layer.forward(x, train=True)
        layer.backward(dy)
        first = layer.weight.grad.copy()
        layer.forward(x, train=True)
        layer.backward(dy)
        np.testing.assert_allclose(layer.weight.grad, 2 * first, rtol=1e-5)

    def test_backward_before_forward_raises(self):
        layer = make_layer(2, (3,))
        with pytest.raises(RuntimeError, match="backward before forward"):
            layer.backward(np.zeros((1, 2)))

    def test_dx_restores_input_shape(self, rng):
        layer = make_layer(4, (2, 3))
        x = rng.normal(size=(5, 2, 3))
        layer.forward(x, train=True)
        dx = layer.backward(np.ones((5, 4)))
        assert dx.shape == (5, 2, 3)


class TestCostAccounting:
    def test_flops_count_macs_as_two(self):
        layer = InnerProductLayer("fc", num_output=10, bias=True)
        layer.setup((20,))
        assert layer.flops_per_sample() == 2 * 10 * 20 + 10

    def test_gemm_shape_is_output_by_batch_by_fanin(self):
        layer = InnerProductLayer("fc", num_output=10)
        layer.setup((20,))
        assert layer.gemm_shapes(batch=8) == [(10, 8, 20)]

    def test_param_count(self):
        layer = InnerProductLayer("fc", num_output=10)
        layer.setup((20,))
        assert layer.param_count() == 10 * 20 + 10
