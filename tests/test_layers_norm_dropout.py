"""Unit tests for LRN, dropout, and flatten layers."""

import numpy as np
import pytest

from repro.nn import check_layer_gradients
from repro.nn.layers import DropoutLayer, FlattenLayer, LRNLayer


def naive_lrn(x, local_size, alpha, beta, k):
    n, c, h, w = x.shape
    half = (local_size - 1) // 2
    y = np.zeros_like(x)
    for ch in range(c):
        lo, hi = max(0, ch - half), min(c, ch + half + 1)
        scale = k + (alpha / local_size) * np.sum(x[:, lo:hi] ** 2, axis=1)
        y[:, ch] = x[:, ch] / scale**beta
    return y


class TestLRN:
    def test_matches_naive(self, rng):
        layer = LRNLayer("norm", local_size=5, alpha=1e-4, beta=0.75)
        layer.setup((8, 4, 4))
        x = rng.normal(size=(2, 8, 4, 4)).astype(np.float32)
        np.testing.assert_allclose(
            layer.forward(x), naive_lrn(x, 5, 1e-4, 0.75, 1.0), rtol=1e-5, atol=1e-6
        )

    def test_identity_like_for_tiny_alpha(self, rng):
        layer = LRNLayer("norm", alpha=1e-12)
        layer.setup((4, 3, 3))
        x = rng.normal(size=(1, 4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(layer.forward(x), x, rtol=1e-5)

    def test_gradients_match_numerical(self, rng):
        layer = LRNLayer("norm", local_size=3, alpha=0.1, beta=0.75)
        layer.setup((5, 2, 2))
        errors = check_layer_gradients(layer, rng.normal(size=(2, 5, 2, 2)), eps=1e-4)
        assert errors["input"] < 1e-3, errors

    def test_rejects_even_window(self):
        with pytest.raises(ValueError, match="odd"):
            LRNLayer("norm", local_size=4)


class TestDropout:
    def test_identity_at_inference(self, rng):
        layer = DropoutLayer("drop", ratio=0.5)
        layer.setup((10,))
        x = rng.normal(size=(4, 10)).astype(np.float32)
        np.testing.assert_array_equal(layer.forward(x, train=False), x)

    def test_training_zeroes_and_rescales(self):
        layer = DropoutLayer("drop", ratio=0.5, seed=3)
        layer.setup((10000,))
        x = np.ones((1, 10000), dtype=np.float32)
        y = layer.forward(x, train=True)
        dropped = float((y == 0).mean())
        assert 0.45 < dropped < 0.55
        # surviving activations are scaled by 1/keep so E[y] == x
        assert abs(float(y.mean()) - 1.0) < 0.05
        np.testing.assert_allclose(np.unique(y), [0.0, 2.0])

    def test_backward_uses_same_mask(self):
        layer = DropoutLayer("drop", ratio=0.5, seed=1)
        layer.setup((100,))
        x = np.ones((1, 100), dtype=np.float32)
        y = layer.forward(x, train=True)
        dx = layer.backward(np.ones_like(y))
        np.testing.assert_array_equal((dx == 0), (y == 0))

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            DropoutLayer("drop", ratio=1.0)

    def test_zero_flops_at_inference(self):
        layer = DropoutLayer("drop")
        layer.setup((10,))
        assert layer.flops_per_sample() == 0


class TestFlatten:
    def test_flattens_and_restores(self, rng):
        layer = FlattenLayer("flat")
        assert layer.setup((2, 3, 4)) == (24,)
        x = rng.normal(size=(5, 2, 3, 4)).astype(np.float32)
        y = layer.forward(x, train=True)
        assert y.shape == (5, 24)
        dx = layer.backward(y)
        np.testing.assert_array_equal(dx, x)
