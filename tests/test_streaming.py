"""Stream-lifecycle test battery: protocol-v4 sessions end-to-end.

Every test drives real sockets against a real :class:`DjinnServer` (and,
for the fleet tests, a real :class:`GatewayServer` over a 2-backend
cluster).  Payloads are stamped — each chunk's value encodes (stream,
ordinal) — so a transcript that mixes streams, drops a chunk, or replays
a stale result is caught by content, not just by count.  The closing
assertion of nearly every test is the no-leak invariant: the session
table returns to zero.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.core import (
    DjinnClient,
    DjinnServer,
    DjinnSessionLimitError,
    DjinnStreamClient,
    DjinnStreamError,
    ModelRegistry,
)
from repro.gateway import ClusterLauncher, GatewayServer
from repro.nn import LayerSpec, Net, NetSpec

from conftest import TEST_SEED


def tiny_spec(name="tiny", in_dim=8, out_dim=4):
    return NetSpec(name, (in_dim,), (
        LayerSpec("InnerProduct", "h", {"num_output": 16}),
        LayerSpec("Sigmoid", "s"),
        LayerSpec("InnerProduct", "out", {"num_output": out_dim}),
        LayerSpec("Softmax", "p"),
    ))


def stamp(stream_index: int, seq: int, dim: int = 8) -> np.ndarray:
    """A chunk whose content names its (stream, ordinal) coordinates."""
    x = np.full((1, dim), 0.1, dtype=np.float32)
    x[0, 0] = float(stream_index + 1)
    x[0, 1] = float(seq + 1)
    return x


def expected_label(net, chunk: np.ndarray) -> int:
    return int(np.argmax(net.forward(chunk)))


def metric_samples(registry, name):
    family = registry.get(name)
    if family is None:
        return {}
    return {tuple(lv): child.value for lv, child in family.children()}


def wait_until(predicate, timeout_s=5.0, interval_s=0.02):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval_s)
    return predicate()


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register_spec("tiny", tiny_spec(), seed=0)
    return reg


@pytest.fixture
def server(registry):
    with DjinnServer(registry) as srv:
        yield srv


@pytest.fixture
def client(server):
    host, port = server.address
    with DjinnClient(host, port) as cli:
        yield cli


class TestStreamLifecycle:
    def test_open_send_close_transcript(self, server, client, registry):
        net = registry.get("tiny")
        stream = client.open_stream("tiny")
        expected = []
        for seq in range(4):
            chunk = stamp(0, seq)
            expected.append(expected_label(net, chunk))
            partial = stream.send(chunk)
            assert not partial.final
            assert partial.seq == seq + 1
            assert partial.data["count"] == seq + 1
            assert partial.data["labels"] == expected[-1:]
        final = stream.close()
        assert final.final
        assert final.data["labels"] == expected
        assert server.sessions.count() == 0

    def test_interleaved_streams_one_connection(self, server, client,
                                                registry):
        """8 streams on one connection, chunks round-robined across them:
        every stream's transcript must contain exactly its own labels."""
        net = registry.get("tiny")
        streams = [client.open_stream("tiny") for _ in range(8)]
        expected = [[] for _ in streams]
        for seq in range(3):
            for i, stream in enumerate(streams):
                chunk = stamp(i, seq)
                expected[i].append(expected_label(net, chunk))
                partial = stream.send(chunk)
                assert partial.data["count"] == seq + 1
        for i, stream in enumerate(streams):
            final = stream.close()
            assert final.final
            assert final.data["labels"] == expected[i], f"stream {i}"
        assert server.sessions.count() == 0

    def test_concurrent_streams_many_connections(self, server, registry):
        """16 threads, each with its own connection and stream, all
        chunking simultaneously — transcripts never cross streams."""
        net = registry.get("tiny")
        host, port = server.address
        failures = []

        def worker(index):
            try:
                with DjinnClient(host, port) as cli:
                    stream = cli.open_stream("tiny")
                    expected = []
                    for seq in range(5):
                        chunk = stamp(index, seq)
                        expected.append(expected_label(net, chunk))
                        stream.send(chunk)
                    final = stream.close()
                    if final.data["labels"] != expected:
                        failures.append(
                            (index, final.data["labels"], expected))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                failures.append((index, repr(exc)))

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not failures
        assert wait_until(lambda: server.sessions.count() == 0)

    def test_chunk_after_close_is_typed_error(self, server, client):
        stream = client.open_stream("tiny")
        stream.send(stamp(0, 0))
        stream.close()
        with pytest.raises(DjinnStreamError, match="unknown or closed") as ei:
            stream.send(stamp(0, 1))
        assert ei.value.stream_id == stream.stream_id
        # the connection survives the stream-scoped error
        follow_up = client.open_stream("tiny")
        assert follow_up.close().final

    def test_open_unknown_model_is_typed_error(self, server, client):
        with pytest.raises(DjinnStreamError, match="not loaded"):
            client.open_stream("nope")
        assert server.sessions.count() == 0

    def test_duplicate_stream_id_rejected(self, server, client):
        client.open_stream("tiny", stream_id=77)
        with pytest.raises(DjinnStreamError, match="already open"):
            client.open_stream("tiny", stream_id=77)

    def test_chunk_without_tensor_aborts_stream(self, server, client):
        from repro.core.protocol import Message, MessageType

        stream = client.open_stream("tiny")
        with pytest.raises(DjinnStreamError, match="no tensor"):
            client._stream_roundtrip(
                Message(MessageType.STREAM_CHUNK, name="tiny",
                        stream_id=stream.stream_id, stream_seq=1))
        assert server.sessions.count() == 0

    def test_wrong_chunk_shape_aborts_stream(self, server, client):
        stream = client.open_stream("tiny")
        with pytest.raises(DjinnStreamError, match="chunk"):
            stream.send(np.zeros((1, 5), np.float32))
        assert server.sessions.count() == 0
        aborted = metric_samples(server.metrics, "djinn_stream_aborted_total")
        assert aborted.get(("tiny", "error"), 0) == 1


class TestSessionLimits:
    def test_session_limit_is_typed_client_exception(self, registry):
        with DjinnServer(registry, session_limit=3) as srv:
            host, port = srv.address
            with DjinnClient(host, port) as cli:
                streams = [cli.open_stream("tiny") for _ in range(3)]
                with pytest.raises(DjinnSessionLimitError) as ei:
                    cli.open_stream("tiny")
                assert ei.value.limit == 3
                # closing one stream frees a slot immediately
                streams[0].close()
                reopened = cli.open_stream("tiny")
                assert reopened.close().final
                for stream in streams[1:]:
                    stream.close()
            rejected = metric_samples(srv.metrics, "djinn_streams_total")
            assert rejected.get(("tiny", "rejected"), 0) == 1

    def test_mid_stream_disconnect_reaps_sessions(self, registry):
        with DjinnServer(registry) as srv:
            host, port = srv.address
            cli = DjinnClient(host, port)
            streams = [cli.open_stream("tiny") for _ in range(4)]
            for i, stream in enumerate(streams):
                stream.send(stamp(i, 0))
            assert srv.sessions.count() == 4
            cli.close()  # vanish without closing any stream
            assert wait_until(lambda: srv.sessions.count() == 0)
            aborted = metric_samples(srv.metrics,
                                     "djinn_stream_aborted_total")
            assert aborted.get(("tiny", "disconnect"), 0) == 4
            gauge = metric_samples(srv.metrics, "djinn_stream_sessions")
            assert gauge.get((), -1) == 0

    def test_open_without_close_reaped_by_idle_timeout(self, registry):
        with DjinnServer(registry, session_idle_s=0.15) as srv:
            host, port = srv.address
            with DjinnClient(host, port) as cli:
                stream = cli.open_stream("tiny")
                stream.send(stamp(0, 0))
                # the opener goes quiet but keeps the connection alive
                assert wait_until(lambda: srv.sessions.count() == 0,
                                  timeout_s=5.0)
                aborted = metric_samples(srv.metrics,
                                         "djinn_stream_aborted_total")
                assert aborted.get(("tiny", "idle"), 0) == 1
                # the reaped stream is gone: the next chunk is a typed error
                with pytest.raises(DjinnStreamError, match="unknown or closed"):
                    stream.send(stamp(0, 1))

    def test_stream_outcome_metrics(self, registry):
        with DjinnServer(registry, session_limit=2) as srv:
            host, port = srv.address
            with DjinnClient(host, port) as cli:
                done = cli.open_stream("tiny")
                done.send(stamp(0, 0))
                done.close()
            totals = metric_samples(srv.metrics, "djinn_streams_total")
            assert totals.get(("tiny", "completed"), 0) == 1
            chunks = metric_samples(srv.metrics, "djinn_stream_chunks_total")
            assert chunks.get(("tiny",), 0) == 1


class TestAsyncStreamClient:
    def test_async_streams_multiplex_connections(self, server, registry):
        net = registry.get("tiny")
        host, port = server.address

        async def main():
            async with DjinnStreamClient(host, port, connections=2) as cli:
                streams = [await cli.open("tiny") for _ in range(6)]

                async def drive(index, stream):
                    expected = []
                    for seq in range(4):
                        chunk = stamp(index, seq)
                        expected.append(expected_label(net, chunk))
                        partial = await stream.send(chunk)
                        assert partial.data["count"] == seq + 1
                    final = await stream.close()
                    assert final.final
                    assert final.data["labels"] == expected

                await asyncio.gather(*[
                    drive(i, stream) for i, stream in enumerate(streams)])

        asyncio.run(main())
        assert wait_until(lambda: server.sessions.count() == 0)

    def test_async_session_limit_typed(self, registry):
        with DjinnServer(registry, session_limit=2) as srv:
            host, port = srv.address

            async def main():
                async with DjinnStreamClient(host, port) as cli:
                    streams = [await cli.open("tiny") for _ in range(2)]
                    with pytest.raises(DjinnSessionLimitError) as ei:
                        await cli.open("tiny")
                    assert ei.value.limit == 2
                    for stream in streams:
                        await stream.close()

            asyncio.run(main())
            assert srv.sessions.count() == 0

    def test_async_chunk_after_close_typed(self, server):
        host, port = server.address

        async def main():
            async with DjinnStreamClient(host, port) as cli:
                stream = await cli.open("tiny")
                await stream.send(stamp(0, 0))
                await stream.close()
                # route is gone locally; re-register to talk to the server
                cli._conns[0].routes[stream.stream_id] = asyncio.Queue()
                with pytest.raises(DjinnStreamError, match="unknown or closed"):
                    await stream.send(stamp(0, 1))

        asyncio.run(main())


class TestGatewayStreaming:
    """The acceptance scenario: concurrent streams through the gateway
    against a 2-backend fleet, pinned per-stream by rendezvous affinity."""

    def test_32_concurrent_streams_through_gateway(self, registry):
        with ClusterLauncher(registry, backends=2) as cluster:
            gateway = GatewayServer(cluster.addresses)
            gateway.start()
            try:
                net = registry.get("tiny")
                host, port = gateway.address
                failures = []

                def worker(index):
                    try:
                        with DjinnClient(host, port) as cli:
                            stream = cli.open_stream("tiny")
                            expected = []
                            for seq in range(4):
                                chunk = stamp(index, seq)
                                expected.append(expected_label(net, chunk))
                                partial = stream.send(chunk)
                                if partial.data["count"] != seq + 1:
                                    failures.append((index, "count",
                                                     partial.data))
                                    return
                            final = stream.close()
                            if final.data["labels"] != expected:
                                failures.append((index, final.data["labels"],
                                                 expected))
                    except Exception as exc:  # noqa: BLE001
                        failures.append((index, repr(exc)))

                threads = [threading.Thread(target=worker, args=(i,))
                           for i in range(32)]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=60)
                assert not failures
                # zero leaked sessions on every backend
                assert wait_until(lambda: all(
                    srv.sessions.count() == 0 for srv in cluster.servers))
                # both backends and the gateway saw completed streams
                gw = metric_samples(gateway.metrics, "gateway_streams_total")
                assert gw.get(("tiny", "completed"), 0) == 32
                per_backend = [
                    metric_samples(srv.metrics, "djinn_streams_total")
                    .get(("tiny", "completed"), 0)
                    for srv in cluster.servers
                ]
                assert sum(per_backend) == 32
                # rendezvous affinity spreads streams over the fleet
                assert all(count > 0 for count in per_backend), per_backend
            finally:
                gateway.stop()

    def test_gateway_unknown_stream_is_typed_error(self, registry):
        with ClusterLauncher(registry, backends=2) as cluster:
            gateway = GatewayServer(cluster.addresses)
            gateway.start()
            try:
                host, port = gateway.address
                with DjinnClient(host, port) as cli:
                    stream = cli.open_stream("tiny")
                    stream.send(stamp(0, 0))
                    stream.close()
                    with pytest.raises(DjinnStreamError,
                                       match="unknown or closed"):
                        stream.send(stamp(0, 1))
            finally:
                gateway.stop()

    def test_gateway_disconnect_cleans_backend_sessions(self, registry):
        with ClusterLauncher(registry, backends=2) as cluster:
            gateway = GatewayServer(cluster.addresses)
            gateway.start()
            try:
                host, port = gateway.address
                cli = DjinnClient(host, port)
                streams = [cli.open_stream("tiny") for _ in range(6)]
                for i, stream in enumerate(streams):
                    stream.send(stamp(i, 0))
                assert sum(srv.sessions.count()
                           for srv in cluster.servers) == 6
                cli.close()  # gateway must close its pinned upstreams
                assert wait_until(lambda: all(
                    srv.sessions.count() == 0 for srv in cluster.servers))
                disconnects = sum(
                    metric_samples(srv.metrics, "djinn_stream_aborted_total")
                    .get(("tiny", "disconnect"), 0)
                    for srv in cluster.servers)
                assert disconnects == 6
            finally:
                gateway.stop()

    def test_streams_and_unary_share_a_gateway_connection(self, registry):
        with ClusterLauncher(registry, backends=2) as cluster:
            gateway = GatewayServer(cluster.addresses)
            gateway.start()
            try:
                net = registry.get("tiny")
                host, port = gateway.address
                with DjinnClient(host, port) as cli:
                    stream = cli.open_stream("tiny")
                    stream.send(stamp(0, 0))
                    x = stamp(9, 9)
                    np.testing.assert_allclose(
                        cli.infer("tiny", x), net.forward(x), rtol=1e-5)
                    final = stream.close()
                    assert final.final and final.data["count"] == 1
            finally:
                gateway.stop()


class TestAsrStreamingService:
    """The real incremental pipeline through the wire: a (440,)-input model
    named ``asr`` gets the AsrStream app — partial transcripts per chunk,
    exact final equal to the unary decode."""

    @pytest.fixture(scope="class")
    def asr_registry(self):
        spec = NetSpec("tiny_am", (440,), (
            LayerSpec("InnerProduct", "h", {"num_output": 32}),
            LayerSpec("Sigmoid", "s"),
            LayerSpec("InnerProduct", "out", {"num_output": 48}),
            LayerSpec("Softmax", "p"),
        ))
        reg = ModelRegistry()
        reg.register("asr", Net(spec).materialize(0))
        return reg

    def test_streamed_transcript_equals_unary(self, asr_registry):
        from repro.tonic import LocalBackend, synthesize_words
        from repro.tonic.asr import AsrApp

        net = asr_registry.get("asr")
        app = AsrApp(LocalBackend(net), num_senones=48)
        audio, _ = synthesize_words(["go", "stop"], seed=TEST_SEED)
        unary = app.run(audio.astype(np.float32))

        with DjinnServer(asr_registry) as srv:
            host, port = srv.address
            with DjinnClient(host, port) as cli:
                stream = cli.open_stream("asr")
                partials = []
                for start in range(0, len(audio), 1600):
                    result = stream.send(
                        audio[start:start + 1600].astype(np.float32))
                    partials.append(result.data["partial"])
                    if result.final:
                        break
                final = stream.close()
            assert srv.sessions.count() == 0
        assert final.data["transcript"] == unary.text
        assert final.data["log_score"] == pytest.approx(unary.log_score)
        # partials are plain strings and the last state is coherent
        assert all(isinstance(p, str) for p in partials)

    def test_streamed_partials_deterministic(self, asr_registry):
        from repro.tonic import synthesize_words

        audio, _ = synthesize_words(["left"], seed=TEST_SEED)

        def run_once():
            with DjinnServer(asr_registry) as srv:
                host, port = srv.address
                with DjinnClient(host, port) as cli:
                    stream = cli.open_stream("asr")
                    partials = []
                    for start in range(0, len(audio), 2000):
                        result = stream.send(
                            audio[start:start + 2000].astype(np.float32))
                        partials.append(result.data["partial"])
                        if result.final:
                            break
                    final = stream.close()
                    return partials, final.data["transcript"]

        assert run_once() == run_once()
