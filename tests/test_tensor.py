"""Unit tests for repro.nn.tensor.Blob."""

import numpy as np
import pytest

from repro.nn.initializers import constant, gaussian
from repro.nn.tensor import FLOAT_BYTES, Blob


class TestBlobConstruction:
    def test_shape_normalized_to_ints(self):
        blob = Blob("w", (np.int64(3), 4))
        assert blob.shape == (3, 4)
        assert all(isinstance(d, int) for d in blob.shape)

    def test_size_and_nbytes(self):
        blob = Blob("w", (3, 4, 5))
        assert blob.size == 60
        assert blob.nbytes == 60 * FLOAT_BYTES

    def test_scalar_like_shape(self):
        blob = Blob("b", (7,))
        assert blob.size == 7

    @pytest.mark.parametrize("shape", [(0,), (3, 0), (-1, 4)])
    def test_rejects_non_positive_dims(self, shape):
        with pytest.raises(ValueError, match="non-positive"):
            Blob("bad", shape)


class TestBlobMaterialization:
    def test_starts_unmaterialized(self):
        blob = Blob("w", (2, 2))
        assert not blob.materialized
        assert blob.data is None and blob.grad is None

    def test_materialize_fills_data_and_zero_grad(self, rng):
        blob = Blob("w", (4, 3))
        blob.materialize(gaussian(0.5), rng)
        assert blob.materialized
        assert blob.data.shape == (4, 3)
        assert blob.data.dtype == np.float32
        assert np.all(blob.grad == 0.0)

    def test_materialize_rejects_wrong_filler_shape(self, rng):
        blob = Blob("w", (2, 2))
        with pytest.raises(ValueError, match="produced shape"):
            blob.materialize(lambda shape, r: np.zeros((3, 3)), rng)

    def test_require_data_raises_until_materialized(self, rng):
        blob = Blob("w", (2,))
        with pytest.raises(RuntimeError, match="not materialized"):
            blob.require_data()
        blob.materialize(constant(1.0), rng)
        assert np.all(blob.require_data() == 1.0)

    def test_zero_grad(self, rng):
        blob = Blob("w", (3,))
        blob.materialize(constant(0.0), rng)
        blob.grad += 5.0
        blob.zero_grad()
        assert np.all(blob.grad == 0.0)

    def test_zero_grad_noop_when_unmaterialized(self):
        Blob("w", (3,)).zero_grad()  # must not raise
