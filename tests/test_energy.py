"""Energy-model tests: the perf/watt arithmetic under the paper's TCO."""

import pytest

from repro.gpusim import app_model
from repro.gpusim.energy import K40_POWER, XEON_CORE_POWER, PowerDraw, query_energy
from repro.models import APPLICATIONS


class TestPowerDraw:
    def test_idle_to_peak_interpolation(self):
        draw = PowerDraw("x", idle_w=10.0, peak_w=110.0)
        assert draw.watts(0.0) == 10.0
        assert draw.watts(1.0) == 110.0
        assert draw.watts(0.5) == 60.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            K40_POWER.watts(1.5)


class TestQueryEnergy:
    @pytest.fixture(scope="class")
    def energies(self):
        return {app: query_energy(app_model(app)) for app in APPLICATIONS}

    def test_gpu_wins_energy_per_query_everywhere(self, energies):
        """The TCO result requires the GPU to win perf/W, not just perf."""
        for app, e in energies.items():
            assert e.energy_ratio > 1.0, app

    def test_energy_win_smaller_than_speedup(self, energies):
        """A K40 draws ~14x a core's power, so the energy advantage is the
        speedup divided by roughly that factor."""
        for app, e in energies.items():
            speedup = e.gpu_qps / e.cpu_qps
            assert e.energy_ratio < speedup, app

    def test_asr_energy_advantage_is_large(self, energies):
        assert energies["asr"].energy_ratio > 5.0

    def test_face_is_the_weakest_energy_win(self, energies):
        """FACE's memory-bound forward pass keeps the GPU drawing power for
        the least useful work — lowest perf/W advantage of the suite."""
        face = energies["face"].energy_ratio
        assert all(face <= energies[a].energy_ratio for a in APPLICATIONS)

    def test_ratios_in_plausible_band(self, energies):
        for app, e in energies.items():
            assert 1.0 < e.energy_ratio < 30.0, app

    def test_energy_times_qps_is_power(self, energies):
        e = energies["imc"]
        implied_watts = e.gpu_j * e.gpu_qps
        assert K40_POWER.idle_w <= implied_watts <= K40_POWER.peak_w
