"""Property-based tests (hypothesis) on the framework's core invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import LayerSpec, Net, NetSpec, check_layer_gradients
from repro.nn.layers import (
    ConvolutionLayer,
    InnerProductLayer,
    PoolingLayer,
    softmax,
)
from repro.tonic.dsp import splice

SETTINGS = dict(max_examples=25, deadline=None)


class TestGradientProperties:
    @settings(**SETTINGS)
    @given(
        num_output=st.integers(1, 12),
        fan_in=st.integers(1, 12),
        batch=st.integers(1, 4),
        seed=st.integers(0, 1000),
    )
    def test_inner_product_gradients(self, num_output, fan_in, batch, seed):
        """Analytic gradients match finite differences for any geometry."""
        rng = np.random.default_rng(seed)
        layer = InnerProductLayer("fc", num_output=num_output)
        layer.setup((fan_in,))
        layer.materialize(rng)
        errors = check_layer_gradients(layer, rng.normal(size=(batch, fan_in)))
        assert all(err < 1e-3 for err in errors.values()), errors

    @settings(max_examples=10, deadline=None)
    @given(
        channels=st.integers(1, 3),
        num_output=st.integers(1, 4),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        pad=st.integers(0, 1),
        seed=st.integers(0, 1000),
    )
    def test_convolution_gradients(self, channels, num_output, kernel, stride, pad, seed):
        rng = np.random.default_rng(seed)
        size = 5
        if size + 2 * pad < kernel:
            return
        layer = ConvolutionLayer("c", num_output=num_output, kernel_size=kernel,
                                 stride=stride, pad=pad)
        layer.setup((channels, size, size))
        layer.materialize(rng)
        errors = check_layer_gradients(layer, rng.normal(size=(2, channels, size, size)))
        assert all(err < 2e-3 for err in errors.values()), errors


class TestShapeProperties:
    @settings(**SETTINGS)
    @given(
        h=st.integers(4, 16),
        w=st.integers(4, 16),
        kernel=st.integers(1, 4),
        stride=st.integers(1, 3),
        seed=st.integers(0, 100),
    )
    def test_pooling_forward_shape_contract(self, h, w, kernel, stride, seed):
        """setup()'s inferred shape always matches forward()'s output."""
        if kernel > min(h, w):
            return
        rng = np.random.default_rng(seed)
        layer = PoolingLayer("p", kernel_size=kernel, stride=stride)
        out_shape = layer.setup((2, h, w))
        y = layer.forward(rng.normal(size=(3, 2, h, w)).astype(np.float32))
        assert y.shape == (3, *out_shape)

    @settings(**SETTINGS)
    @given(
        layers=st.lists(st.integers(1, 20), min_size=1, max_size=4),
        fan_in=st.integers(1, 16),
        batch=st.integers(1, 5),
        seed=st.integers(0, 100),
    )
    def test_mlp_forward_shape_and_finiteness(self, layers, fan_in, batch, seed):
        """Any random MLP spec produces finite outputs of the declared shape."""
        specs = []
        for i, width in enumerate(layers):
            specs.append(LayerSpec("InnerProduct", f"fc{i}", {"num_output": width}))
            specs.append(LayerSpec("Tanh", f"act{i}"))
        net = Net(NetSpec("rand", (fan_in,), tuple(specs))).materialize(seed)
        x = np.random.default_rng(seed).normal(size=(batch, fan_in))
        y = net.forward(x)
        assert y.shape == (batch, layers[-1])
        assert np.all(np.isfinite(y))


class TestSoftmaxProperties:
    @settings(**SETTINGS)
    @given(
        rows=st.integers(1, 8),
        cols=st.integers(2, 16),
        scale=st.floats(0.1, 100.0),
        seed=st.integers(0, 1000),
    )
    def test_softmax_is_a_distribution(self, rows, cols, scale, seed):
        x = np.random.default_rng(seed).normal(scale=scale, size=(rows, cols))
        probs = softmax(x)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=-1), 1.0, rtol=1e-5)

    @settings(**SETTINGS)
    @given(seed=st.integers(0, 1000), shift=st.floats(-50, 50))
    def test_softmax_shift_invariance(self, seed, shift):
        x = np.random.default_rng(seed).normal(size=(4, 6))
        np.testing.assert_allclose(softmax(x), softmax(x + shift), rtol=1e-5, atol=1e-8)


class TestAccountingProperties:
    @settings(**SETTINGS)
    @given(batch=st.integers(1, 64), seed=st.integers(0, 100))
    def test_flops_linear_in_batch_for_any_model(self, batch, seed):
        from repro.models import build_net
        from repro.nn import analyze

        app = ("dig", "pos", "asr")[seed % 3]
        net = build_net(app)
        assert analyze(net, batch).total_flops == batch * analyze(net, 1).total_flops

    @settings(**SETTINGS)
    @given(frames=st.integers(1, 30), dims=st.integers(1, 8), context=st.integers(0, 5))
    def test_splice_preserves_center_frame(self, frames, dims, context):
        feats = np.random.default_rng(frames).normal(size=(frames, dims))
        spliced = splice(feats, context=context)
        assert spliced.shape == (frames, (2 * context + 1) * dims)
        center = spliced[:, context * dims : (context + 1) * dims]
        np.testing.assert_array_equal(center, feats)


class TestProtocolProperties:
    @settings(max_examples=20, deadline=None)
    @given(
        dims=st.lists(st.integers(1, 8), min_size=1, max_size=4),
        seed=st.integers(0, 1000),
        name=st.text(alphabet="abcdefghijklmnopqrstuvwxyz_", min_size=0, max_size=30),
    )
    def test_any_tensor_roundtrips(self, dims, seed, name):
        import socket

        from repro.core.protocol import Message, MessageType, recv_message, send_message

        tensor = np.random.default_rng(seed).normal(size=tuple(dims)).astype(np.float32)
        a, b = socket.socketpair()
        try:
            send_message(a, Message(MessageType.INFER_REQUEST, name=name, tensor=tensor))
            out = recv_message(b)
        finally:
            a.close()
            b.close()
        assert out.name == name
        np.testing.assert_array_equal(out.tensor, tensor)
