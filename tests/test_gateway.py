"""Gateway tests: routing policies, fault tolerance, stats aggregation."""

import threading
import time

import numpy as np
import pytest

from repro.core import (
    DjinnClient,
    DjinnConnectionError,
    DjinnServer,
    DjinnServiceError,
    ModelRegistry,
)
from repro.gateway import (
    BackendHandle,
    ClusterLauncher,
    GatewayServer,
    HealthChecker,
    BackendPool,
    RetryPolicy,
    Router,
    merge_stats,
    rendezvous_score,
)
from repro.models import lenet5, senna


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register_spec("dig", lenet5(), seed=0)
    reg.register_spec("pos", senna("pos"), seed=1)
    return reg


def make_handles(n, models=("dig", "pos")):
    handles = [BackendHandle("127.0.0.1", 9000 + i) for i in range(n)]
    for handle in handles:
        handle.mark_up(models)
    return handles


class FakePool:
    """A BackendPool stand-in for policy unit tests (no sockets)."""

    def __init__(self, handles):
        self.backends = handles

    def healthy(self):
        return [b for b in self.backends if b.healthy]

    def __iter__(self):
        return iter(self.backends)


class TestRoutingPolicies:
    def test_round_robin_cycles(self):
        handles = make_handles(3)
        router = Router(FakePool(handles), policy="round_robin")
        first = [router.route("dig")[0].key for _ in range(6)]
        assert first == [h.key for h in handles] * 2

    def test_round_robin_skips_unhealthy(self):
        handles = make_handles(3)
        handles[1].mark_down()
        router = Router(FakePool(handles), policy="round_robin")
        chosen = {router.route("dig")[0].key for _ in range(4)}
        assert handles[1].key not in chosen
        assert chosen == {handles[0].key, handles[2].key}

    def test_least_outstanding_picks_idle_backend(self):
        handles = make_handles(3)
        handles[0]._outstanding = 5
        handles[1]._outstanding = 1
        handles[2]._outstanding = 3
        router = Router(FakePool(handles), policy="least_outstanding")
        assert [b.key for b in router.route("dig")] == [
            handles[1].key, handles[2].key, handles[0].key]

    def test_model_affinity_is_stable_and_spreads_models(self):
        handles = make_handles(5, models=())
        router = Router(FakePool(handles), policy="model_affinity")
        # same model always lands on the same backend while the fleet is stable
        assert len({router.route("dig")[0].key for _ in range(10)}) == 1
        # ...and different models spread over more than one backend
        firsts = {router.route(m)[0].key for m in ("dig", "pos", "chk", "ner", "imc", "asr")}
        assert len(firsts) > 1

    def test_model_affinity_prefers_hot_backends(self):
        handles = make_handles(4, models=())
        # exactly one backend reports the model loaded; it must win over hashing
        cold = sorted(handles, key=lambda b: -rendezvous_score("dig", b.key))
        hot = cold[-1]  # worst hash rank, but it has the model hot
        hot.mark_up(("dig",))
        router = Router(FakePool(handles), policy="model_affinity")
        assert router.route("dig")[0].key == hot.key

    def test_model_affinity_fails_over_on_mark_down(self):
        handles = make_handles(4, models=())
        router = Router(FakePool(handles), policy="model_affinity")
        primary = router.route("dig")[0]
        primary.mark_down()
        fallback = router.route("dig")[0]
        assert fallback.key != primary.key
        # recovery restores the original preference
        primary.mark_up()
        assert router.route("dig")[0].key == primary.key

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown routing policy"):
            Router(FakePool(make_handles(1)), policy="random")

    def test_empty_route_when_all_down(self):
        handles = make_handles(2)
        for handle in handles:
            handle.mark_down()
        router = Router(FakePool(handles), policy="round_robin")
        assert router.route("dig") == []


class TestRetryPolicy:
    def test_delays_grow_and_cap(self, py_rng):
        policy = RetryPolicy(max_attempts=6, base_delay_s=0.01, max_delay_s=0.05,
                             jitter_frac=0.0)
        delays = [policy.delay_s(k, py_rng) for k in range(5)]
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05]

    def test_jitter_stays_in_band(self, py_rng):
        policy = RetryPolicy(base_delay_s=0.02, jitter_frac=0.5)
        rng = py_rng
        for attempt in range(4):
            cap = min(0.02 * 2 ** attempt, policy.max_delay_s)
            for _ in range(50):
                d = policy.delay_s(attempt, rng)
                assert cap * 0.5 <= d <= cap

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay_s=0.5, max_delay_s=0.1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter_frac=1.5)


class TestMergeStats:
    def test_counts_sum_and_means_weight(self):
        a = {"pos": {"requests": 3.0, "inputs": 6.0, "mean_ms": 10.0,
                     "p50_ms": 9.0, "p95_ms": 20.0, "p99_ms": 30.0, "qps": 5.0}}
        b = {"pos": {"requests": 1.0, "inputs": 2.0, "mean_ms": 50.0,
                     "p50_ms": 45.0, "p95_ms": 60.0, "p99_ms": 70.0, "qps": 2.0}}
        merged = merge_stats([a, b])["pos"]
        assert merged["requests"] == 4.0
        assert merged["inputs"] == 8.0
        assert merged["qps"] == 7.0
        assert merged["backends"] == 2.0
        assert merged["mean_ms"] == pytest.approx(20.0)  # (3*10 + 1*50) / 4
        assert merged["p99_ms"] == pytest.approx(40.0)

    def test_disjoint_models_pass_through(self):
        merged = merge_stats([
            {"dig": {"requests": 2.0, "mean_ms": 1.0}},
            {"pos": {"requests": 5.0, "mean_ms": 3.0}},
        ])
        assert merged["dig"]["requests"] == 2.0
        assert merged["pos"]["mean_ms"] == 3.0
        assert merged["dig"]["backends"] == 1.0

    def test_zero_request_snapshot_does_not_divide_by_zero(self):
        merged = merge_stats([{"dig": {"requests": 0.0, "mean_ms": 0.0}}])
        assert merged["dig"]["mean_ms"] == 0.0


@pytest.fixture
def fleet(registry):
    """Three live backends behind a gateway, fast health checking."""
    with ClusterLauncher(registry, backends=3) as cluster:
        gateway = GatewayServer(
            cluster.addresses, policy="round_robin",
            retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05),
            health_interval_s=0.2, backend_timeout_s=5.0,
        )
        with gateway:
            yield cluster, gateway


class TestGatewayService:
    def test_list_models_is_fleet_union(self, fleet):
        _, gateway = fleet
        with DjinnClient(*gateway.address) as cli:
            assert cli.list_models() == ["dig", "pos"]

    def test_infer_matches_local_forward(self, fleet, registry, rng):
        _, gateway = fleet
        x = rng.normal(size=(4, 1, 32, 32)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            np.testing.assert_allclose(
                cli.infer("dig", x), registry.get("dig").forward(x), rtol=1e-5)

    def test_round_robin_spreads_load_across_backends(self, fleet, rng):
        cluster, gateway = fleet
        x = rng.normal(size=(1, 300)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            for _ in range(6):
                cli.infer("pos", x)
        served = [srv.stats.requests("pos") for srv in cluster.servers]
        assert sum(served) == 6
        assert all(count == 2 for count in served)

    def test_stats_aggregate_across_fleet(self, fleet, rng):
        _, gateway = fleet
        x = rng.normal(size=(2, 300)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            for _ in range(5):
                cli.infer("pos", x)
            stats = cli.stats()
        assert stats["pos"]["requests"] == 5.0
        assert stats["pos"]["inputs"] == 10.0
        assert stats["pos"]["backends"] == 3.0  # round-robin touched everyone
        assert stats["pos"]["p95_ms"] >= 0.0
        # the gateway's own end-to-end accounting rides along
        assert stats["gateway:pos"]["requests"] == 5.0

    def test_model_error_not_retried(self, fleet, rng):
        cluster, gateway = fleet
        with DjinnClient(*gateway.address) as cli:
            with pytest.raises(DjinnServiceError, match="not loaded"):
                cli.infer("asr", np.zeros((1, 440), np.float32))
        # a model-level error burns one backend attempt, not the whole budget
        assert sum(srv.stats.requests("asr") for srv in cluster.servers) == 0

    def test_killed_backend_marked_down_and_requests_survive(self, fleet, rng):
        cluster, gateway = fleet
        x = rng.normal(size=(1, 300)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            for _ in range(3):  # warm pooled connections to every backend
                cli.infer("pos", x)
            dead_host, dead_port = cluster.kill_backend(0)
            # every request after the kill must still succeed (retry on survivors)
            for _ in range(6):
                assert cli.infer("pos", x).shape == (1, 45)
        dead_key = f"{dead_host}:{dead_port}"
        assert dead_key not in {b.key for b in gateway.pool.healthy()}
        backend = gateway.pool.get(dead_key)
        assert backend is not None and not backend.healthy

    def test_kill_mid_run_under_concurrent_load(self, registry, rng):
        """The acceptance scenario: a backend dies mid-run, no client errors.

        Backends are device-paced (5 ms/request) so the run provably spans
        the kill — without pacing the whole load can drain before the kill
        lands and nothing would be exercised.
        """
        x = rng.normal(size=(1, 300)).astype(np.float32)
        errors = []
        done = []
        with ClusterLauncher(registry, backends=3, service_floor_s=0.005) as cluster:
            gateway = GatewayServer(
                cluster.addresses, policy="round_robin",
                retry=RetryPolicy(max_attempts=4, base_delay_s=0.01, max_delay_s=0.05),
                health_interval_s=0.2, backend_timeout_s=5.0,
            )
            with gateway:

                def client_loop(n):
                    try:
                        with DjinnClient(*gateway.address) as cli:
                            for _ in range(n):
                                out = cli.infer("pos", x)
                                assert out.shape == (1, 45)
                                done.append(1)
                    except Exception as exc:  # noqa: BLE001 - recorded for the assert
                        errors.append(exc)

                threads = [threading.Thread(target=client_loop, args=(15,))
                           for _ in range(3)]
                for t in threads:
                    t.start()
                time.sleep(0.05)  # let the run get going, then yank a backend
                dead_host, dead_port = cluster.kill_backend(1)
                for t in threads:
                    t.join(timeout=30)
                assert not errors
                assert sum(done) == 45
                # the run outlived the kill, so some request hit the dead
                # backend and was retried — which is what marked it down
                backend = gateway.pool.get(f"{dead_host}:{dead_port}")
                assert backend is not None and not backend.healthy

    def test_all_backends_down_surfaces_service_error(self, registry, rng):
        with ClusterLauncher(registry, backends=2) as cluster:
            gateway = GatewayServer(
                cluster.addresses,
                retry=RetryPolicy(max_attempts=2, base_delay_s=0.01, max_delay_s=0.02),
                health_interval_s=5.0,  # keep the prober out of the way
            )
            with gateway:
                with DjinnClient(*gateway.address) as cli:
                    cluster.kill_backend(0)
                    cluster.kill_backend(1)
                    with pytest.raises(DjinnServiceError, match="failed after 2 attempts"):
                        cli.infer("pos", rng.normal(size=(1, 300)).astype(np.float32))


class TestHealthChecker:
    def test_probe_marks_down_then_up_again(self, registry):
        server = DjinnServer(registry).start()
        host, port = server.address
        pool = BackendPool([(host, port)], timeout_s=2.0)
        checker = HealthChecker(pool, interval_s=0.1, probe_timeout_s=2.0)
        backend = pool.backends[0]
        assert checker.probe(backend)
        assert backend.models == ("dig", "pos")
        server.stop()
        assert not checker.probe(backend)
        assert not backend.healthy
        # a replacement instance on the same port brings it back
        server2 = DjinnServer(registry, host=host, port=port).start()
        try:
            assert checker.probe(backend)
            assert backend.healthy
        finally:
            server2.stop()
            pool.close()

    def test_background_prober_recovers_fleet_state(self, registry):
        server = DjinnServer(registry).start()
        host, port = server.address
        pool = BackendPool([(host, port)], timeout_s=2.0)
        checker = HealthChecker(pool, interval_s=0.05, probe_timeout_s=2.0).start()
        try:
            server.stop()
            deadline = time.time() + 5
            while pool.backends[0].healthy and time.time() < deadline:
                time.sleep(0.02)
            assert not pool.backends[0].healthy
        finally:
            checker.stop()
            pool.close()


class TestClusterLauncher:
    def test_registry_factory_builds_per_backend(self):
        built = []

        def factory(index):
            reg = ModelRegistry()
            reg.register_spec("pos", senna("pos"), seed=index)
            built.append(index)
            return reg

        with ClusterLauncher(factory, backends=2) as cluster:
            assert built == [0, 1]
            assert len(cluster.addresses) == 2

    def test_validation_and_double_start(self, registry):
        with pytest.raises(ValueError, match="at least one backend"):
            ClusterLauncher(registry, backends=0)
        cluster = ClusterLauncher(registry, backends=1).start()
        try:
            with pytest.raises(RuntimeError, match="already started"):
                cluster.start()
        finally:
            cluster.stop()


class TestClientReconnect:
    def test_reconnect_after_server_restart(self, registry, rng):
        server = DjinnServer(registry).start()
        host, port = server.address
        client = DjinnClient(host, port, timeout_s=5.0)
        x = rng.normal(size=(1, 300)).astype(np.float32)
        assert client.infer("pos", x).shape == (1, 45)
        server.stop()
        with pytest.raises(DjinnConnectionError):
            client.infer("pos", x)
        # reconnect with nothing listening fails too — and drops the dead
        # socket, releasing the port for the replacement instance
        with pytest.raises(DjinnConnectionError):
            client.reconnect()
        time.sleep(0.05)
        server2 = DjinnServer(registry, host=host, port=port).start()
        try:
            client.reconnect()
            assert client.infer("pos", x).shape == (1, 45)
        finally:
            client.close()
            server2.stop()

    def test_connection_error_is_both_service_error_and_oserror(self):
        import socket as _socket

        with _socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            free_port = probe.getsockname()[1]
        with pytest.raises(DjinnServiceError):
            DjinnClient("127.0.0.1", free_port, timeout_s=0.5)
        with pytest.raises(OSError):
            DjinnClient("127.0.0.1", free_port, timeout_s=0.5)


class TestServiceStatsExtensions:
    def test_snapshot_has_p95_and_qps(self):
        from repro.core import ServiceStats

        stats = ServiceStats()
        for i in range(20):
            stats.record("pos", 0.01)
        snap = stats.snapshot()["pos"]
        assert snap["p95_ms"] == pytest.approx(10.0)
        assert snap["qps"] > 0.0
        assert snap["p50_ms"] <= snap["p95_ms"] <= snap["p99_ms"]

    def test_single_sample_has_zero_qps(self):
        from repro.core import ServiceStats

        stats = ServiceStats()
        stats.record("dig", 0.005)
        assert stats.snapshot()["dig"]["qps"] == 0.0

    def test_reset_clears_everything(self):
        from repro.core import ServiceStats

        stats = ServiceStats()
        stats.record("dig", 0.005)
        stats.reset()
        assert stats.snapshot() == {}
        assert stats.requests("dig") == 0


class TestServiceStatsObservability:
    def test_snapshot_has_max_and_window(self):
        from repro.core import ServiceStats

        stats = ServiceStats(window=4)
        for latency in (0.001, 0.040, 0.002):
            stats.record("dig", latency)
        snap = stats.snapshot()["dig"]
        assert snap["max_ms"] == pytest.approx(40.0)
        assert snap["window"] == 3.0
        # window is bounded, max is all-time
        for _ in range(6):
            stats.record("dig", 0.001)
        snap = stats.snapshot()["dig"]
        assert snap["window"] == 4.0
        assert snap["max_ms"] == pytest.approx(40.0)

    def test_injected_clock_drives_qps(self):
        from repro.core import ServiceStats

        now = [100.0]
        stats = ServiceStats(clock=lambda: now[0])
        for _ in range(5):
            stats.record("pos", 0.01)
            now[0] += 0.5  # 5 requests over 2.0s of fake time
        assert stats.snapshot()["pos"]["qps"] == pytest.approx(5 / 2.0)

    def test_stats_surface_in_metrics_registry(self):
        """The same numbers back STATS (JSON) and METRICS (exposition)."""
        from repro.core import ServiceStats
        from repro.obs import parse_exposition

        stats = ServiceStats()
        for _ in range(3):
            stats.record("dig", 0.004, inputs=2)
        samples = parse_exposition(stats.registry.expose())
        key = (("model", "dig"),)
        assert samples["djinn_requests_total"][key] == 3
        assert samples["djinn_inputs_total"][key] == 6
        assert samples["djinn_request_latency_seconds_count"][key] == 3


class TestMergeStatsObservability:
    def test_max_and_window_merge(self):
        a = {"pos": {"requests": 2.0, "mean_ms": 5.0, "max_ms": 11.0,
                     "window": 2.0}}
        b = {"pos": {"requests": 3.0, "mean_ms": 5.0, "max_ms": 40.0,
                     "window": 3.0}}
        merged = merge_stats([a, b])["pos"]
        assert merged["max_ms"] == 40.0   # fleet max, not a sum
        assert merged["window"] == 5.0    # samples available fleet-wide

    def test_snapshots_without_new_fields_still_merge(self):
        merged = merge_stats([{"pos": {"requests": 2.0, "mean_ms": 5.0}}])
        assert "max_ms" not in merged["pos"]


class TestGatewayObservability:
    def test_metrics_request_aggregates_fleet(self, fleet, rng):
        from repro.obs import parse_exposition

        _, gateway = fleet
        x = rng.normal(size=(1, 300)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            for _ in range(6):
                cli.infer("pos", x)
            dump = cli.metrics()
            text = cli.metrics_text()
        # backend request counters merge across the 3 replicas
        samples = dump["metrics"]["djinn_requests_total"]["samples"]
        assert sum(s["value"] for s in samples
                   if s["labels"]["model"] == "pos") == 6.0
        # the gateway's own accounting rides along under its prefix
        gw = dump["metrics"]["gateway_requests_total"]["samples"]
        assert sum(s["value"] for s in gw
                   if s["labels"]["model"] == "pos") == 6.0
        # latency histograms merged bucket-wise
        (hist,) = [s for s in
                   dump["metrics"]["djinn_request_latency_seconds"]["samples"]
                   if s["labels"]["model"] == "pos"]
        assert hist["count"] == 6
        # and the rendered exposition is strictly parseable
        parsed = parse_exposition(text)
        assert parsed["djinn_requests_total"][(("model", "pos"),)] == 6.0

    def test_backend_death_increments_transition_counter(self, fleet, caplog):
        import logging as _logging

        cluster, gateway = fleet
        dead = cluster.kill_backend(0)
        handle = next(b for b in gateway.pool if b.key == f"{dead[0]}:{dead[1]}")
        with caplog.at_level(_logging.INFO, logger="repro.gateway"):
            gateway.health.probe(handle)
        counter = gateway.metrics.get("gateway_backend_transitions_total")
        assert counter.labels(backend=handle.key, event="mark_down").value == 1.0
        assert any("event=backend.mark_down" in r.getMessage()
                   and f"backend={handle.key}" in r.getMessage()
                   for r in caplog.records)
        # a second failed probe is not a transition — no double counting
        gateway.health.probe(handle)
        assert counter.labels(backend=handle.key, event="mark_down").value == 1.0

    def test_mark_up_transition_counted(self, registry):
        with ClusterLauncher(registry, backends=1) as cluster:
            gateway = GatewayServer(cluster.addresses, health_interval_s=30.0)
            with gateway:
                (handle,) = list(gateway.pool)
                handle.mark_down()
                gateway.health.probe(handle)  # backend is alive -> back up
                counter = gateway.metrics.get("gateway_backend_transitions_total")
                assert counter.labels(backend=handle.key,
                                      event="mark_up").value == 1.0

    def test_retry_and_exhausted_counters(self, caplog):
        import logging as _logging
        import socket as _socket

        # reserve a port that nothing listens on
        probe = _socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead = probe.getsockname()
        probe.close()
        gateway = GatewayServer(
            [dead], retry=RetryPolicy(max_attempts=3, base_delay_s=0.001,
                                      max_delay_s=0.002),
            health_interval_s=30.0)
        with gateway:
            with caplog.at_level(_logging.WARNING, logger="repro.gateway"):
                with DjinnClient(*gateway.address) as cli:
                    with pytest.raises(DjinnServiceError, match="failed after"):
                        cli.infer("pos", np.zeros((1, 300), np.float32))
            retries = gateway.metrics.get("gateway_retries_total")
            exhausted = gateway.metrics.get("gateway_retry_exhausted_total")
            assert retries.labels(model="pos").value == 2.0  # attempts 2 and 3
            assert exhausted.labels(model="pos").value == 1.0
            messages = [r.getMessage() for r in caplog.records]
            assert any(m.startswith("event=retry ") for m in messages)
            assert any(m.startswith("event=retry.exhausted") for m in messages)


# ------------------------------------------------------------- gateway QoS
class TestGatewayQos:
    """Admission control, deadline gating, and hedged requests."""

    @pytest.fixture
    def qos_fleet(self, registry):
        """Two sched-armed backends behind a QoS-armed gateway."""
        from repro.core import BatchPolicy
        from repro.sched import QosConfig

        with ClusterLauncher(registry, backends=2,
                             batching=BatchPolicy(max_batch=4, timeout_ms=1.0),
                             sched="adaptive") as cluster:
            gateway = GatewayServer(
                cluster.addresses, policy="round_robin",
                retry=RetryPolicy(max_attempts=3, base_delay_s=0.01,
                                  max_delay_s=0.05),
                health_interval_s=0.5,
                # tenant_qps deliberately tiny: the throttle test relies on
                # the spent burst token NOT refilling between two
                # back-to-back requests, even on a slow loaded host
                qos=QosConfig(admission=True, tenant_qps=0.5,
                              tenant_burst=1.0, hedge_ms=60.0),
            )
            with gateway:
                yield cluster, gateway

    def test_qos_request_served_end_to_end(self, qos_fleet, registry, rng):
        _, gateway = qos_fleet
        x = rng.normal(size=(2, 1, 32, 32)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            out = cli.infer("dig", x, deadline_ms=5000.0, priority=2)
            np.testing.assert_allclose(out, registry.get("dig").forward(x),
                                       rtol=1e-5)

    def test_dead_on_arrival_deadline_is_typed(self, qos_fleet, rng):
        from repro.core import DjinnDeadlineError

        _, gateway = qos_fleet
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            with pytest.raises(DjinnDeadlineError, match="deadline exceeded"):
                cli.infer("dig", x, deadline_ms=0.0001)
            # the rejection is accounted, and the connection still works
            assert cli.infer("dig", x, deadline_ms=5000.0).shape == (1, 10)
        expired = gateway.metrics.get("gateway_expired_total")
        assert expired.labels(model="dig").value == 1.0

    def test_tenant_throttle_sheds_with_retry_hint(self, qos_fleet, rng):
        from repro.core import DjinnOverloadedError

        _, gateway = qos_fleet
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            assert cli.infer("dig", x, tenant="greedy").shape == (1, 10)
            with pytest.raises(DjinnOverloadedError) as excinfo:
                cli.infer("dig", x, tenant="greedy")  # burst of 1 is spent
            assert excinfo.value.reason == "tenant_throttle"
            assert excinfo.value.retry_after_ms > 0.0
            # other tenants are unaffected
            assert cli.infer("dig", x, tenant="polite").shape == (1, 10)
        shed = gateway.metrics.get("gateway_admission_rejected_total")
        assert shed.labels(model="dig", reason="tenant_throttle").value == 1.0

    def test_injected_admission_reject_is_typed(self, qos_fleet, rng):
        from repro.core import DjinnOverloadedError, faultsite
        from repro.faults import FaultInjector, FaultPlan, FaultRule

        _, gateway = qos_fleet
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        plan = FaultPlan(rules=(FaultRule("sched.admit", "reject",
                                          scope="dig", nth=(1,)),), seed=0)
        with DjinnClient(*gateway.address) as cli:
            faultsite.install(FaultInjector(plan))
            try:
                with pytest.raises(DjinnOverloadedError) as excinfo:
                    cli.infer("dig", x)
            finally:
                faultsite.uninstall()
            assert excinfo.value.reason == "injected"
            assert cli.infer("dig", x).shape == (1, 10)  # rule was one-shot

    def test_hedge_cancels_slow_primary(self, qos_fleet, rng):
        """The tail-latency race: the primary arm is stalled by an injected
        delay, the hedge arm answers from the other backend well before the
        stall clears, and the loser's roundtrip is cancelled first-wins —
        without marking the stalled backend down."""
        from repro.core import faultsite
        from repro.faults import FaultInjector, FaultPlan, FaultRule

        _, gateway = qos_fleet
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        plan = FaultPlan(rules=(FaultRule("sched.hedge", "delay",
                                          scope="dig", nth=(1,),
                                          delay_s=1.0),), seed=0)
        with DjinnClient(*gateway.address) as cli:
            faultsite.install(FaultInjector(plan))
            try:
                start = time.monotonic()
                out = cli.infer("dig", x)
                elapsed = time.monotonic() - start
            finally:
                faultsite.uninstall()
            assert out.shape == (1, 10)
            # the hedge (fires at 60 ms) must beat the 1 s primary stall
            assert elapsed < 0.8, f"hedge did not win: {elapsed:.3f}s"
            hedges = gateway.metrics.get("gateway_hedges_total")
            wins = gateway.metrics.get("gateway_hedge_wins_total")
            assert hedges.labels(model="dig").value == 1.0
            assert wins.labels(model="dig", winner="hedge").value == 1.0
            # cancellation is not a backend failure: the fleet stays whole
            assert len(gateway.pool.healthy()) == 2
            assert cli.infer("dig", x).shape == (1, 10)

    def test_qos_off_by_default(self, fleet, rng):
        """Without a QosConfig the gateway has no admission path at all —
        the pre-QoS behavior, bit for bit."""
        _, gateway = fleet
        assert gateway.qos is None
        x = rng.normal(size=(1, 1, 32, 32)).astype(np.float32)
        with DjinnClient(*gateway.address) as cli:
            assert cli.infer("dig", x).shape == (1, 10)
        assert gateway.metrics.get("gateway_admission_rejected_total") \
            .labels(model="dig", reason="predicted_late").value == 0.0
