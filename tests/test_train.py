"""Unit and integration tests for the SGD solver."""

import numpy as np
import pytest

from repro.nn import LayerSpec, Net, NetSpec, SgdSolver, accuracy


def two_blob_problem(n=200, seed=0):
    """Two well-separated Gaussian blobs in 2-D — learnable in a few epochs."""
    rng = np.random.default_rng(seed)
    half = n // 2
    x0 = rng.normal((-2.0, -2.0), 0.5, size=(half, 2))
    x1 = rng.normal((2.0, 2.0), 0.5, size=(half, 2))
    x = np.concatenate([x0, x1]).astype(np.float32)
    y = np.concatenate([np.zeros(half, int), np.ones(half, int)])
    order = rng.permutation(n)
    return x[order], y[order]


def logits_mlp(hidden=8):
    return Net(NetSpec("mlp", (2,), (
        LayerSpec("InnerProduct", "fc1", {"num_output": hidden}),
        LayerSpec("Tanh", "act"),
        LayerSpec("InnerProduct", "fc2", {"num_output": 2}),
    ))).materialize(1)


class TestSolverValidation:
    def test_requires_materialized_net(self):
        net = Net(NetSpec("m", (2,), (LayerSpec("InnerProduct", "fc", {"num_output": 2}),)))
        with pytest.raises(ValueError, match="materialize"):
            SgdSolver(net)

    @pytest.mark.parametrize("kwargs", [{"lr": 0.0}, {"lr": -1.0}, {"momentum": 1.0}])
    def test_rejects_bad_hyperparameters(self, kwargs):
        with pytest.raises(ValueError):
            SgdSolver(logits_mlp(), **kwargs)

    def test_fit_rejects_mismatched_lengths(self):
        solver = SgdSolver(logits_mlp())
        with pytest.raises(ValueError, match="length"):
            solver.fit(np.zeros((3, 2)), np.zeros(2, int))


class TestTraining:
    def test_loss_decreases_on_separable_problem(self):
        x, y = two_blob_problem()
        solver = SgdSolver(logits_mlp(), lr=0.1)
        log = solver.fit(x, y, epochs=5, batch=16)
        first = np.mean(log.losses[:5])
        last = np.mean(log.losses[-5:])
        assert last < first * 0.2

    def test_reaches_high_accuracy(self):
        x, y = two_blob_problem()
        net = logits_mlp()
        SgdSolver(net, lr=0.1).fit(x, y, epochs=5, batch=16)
        assert accuracy(net, x, y) > 0.98

    def test_momentum_accelerates_early_progress(self):
        x, y = two_blob_problem()
        plain = SgdSolver(logits_mlp(), lr=0.02, momentum=0.0)
        log_plain = plain.fit(x, y, epochs=2, batch=16, seed=3)
        fast = SgdSolver(logits_mlp(), lr=0.02, momentum=0.9)
        log_fast = fast.fit(x, y, epochs=2, batch=16, seed=3)
        assert np.mean(log_fast.losses[-5:]) < np.mean(log_plain.losses[-5:])

    def test_weight_decay_shrinks_weights(self):
        x, y = two_blob_problem()
        net_a, net_b = logits_mlp(), logits_mlp()
        SgdSolver(net_a, lr=0.05, weight_decay=0.0).fit(x, y, epochs=3, seed=1)
        SgdSolver(net_b, lr=0.05, weight_decay=0.05).fit(x, y, epochs=3, seed=1)
        norm_a = sum(float(np.abs(p.data).sum()) for p in net_a.params())
        norm_b = sum(float(np.abs(p.data).sum()) for p in net_b.params())
        assert norm_b < norm_a

    def test_lr_decay_applied_per_epoch(self):
        x, y = two_blob_problem(n=32)
        solver = SgdSolver(logits_mlp(), lr=0.1, lr_decay=0.5)
        solver.fit(x, y, epochs=3, batch=16)
        np.testing.assert_allclose(solver.lr, 0.1 * 0.5**3)

    def test_eval_set_tracked_per_epoch(self):
        x, y = two_blob_problem()
        solver = SgdSolver(logits_mlp(), lr=0.1)
        log = solver.fit(x, y, epochs=3, batch=32, eval_set=(x, y))
        assert len(log.epoch_accuracy) == 3
        assert log.epoch_accuracy[-1] >= log.epoch_accuracy[0]

    def test_on_epoch_callback_invoked(self):
        x, y = two_blob_problem(n=32)
        seen = []
        SgdSolver(logits_mlp(), lr=0.1).fit(
            x, y, epochs=2, on_epoch=lambda e, log: seen.append(e)
        )
        assert seen == [0, 1]


class TestAccuracy:
    def test_batched_evaluation_matches_full(self):
        x, y = two_blob_problem(n=100)
        net = logits_mlp()
        assert accuracy(net, x, y, batch=7) == accuracy(net, x, y, batch=100)

    def test_empty_set_rejected(self):
        with pytest.raises(ValueError):
            accuracy(logits_mlp(), np.zeros((0, 2)), np.zeros(0, int))
