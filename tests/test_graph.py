"""DAG network tests: merge layers, GraphNet execution, gradients, serving."""

import numpy as np
import pytest

from repro.nn import INPUT, GraphLayerSpec, GraphNet, GraphSpec, numerical_gradient
from repro.nn.layers import ConcatLayer, EltwiseSumLayer, ShapeError
from repro.nn.layers.softmax import softmax_cross_entropy


def L(type_, name, bottoms, **params):
    return GraphLayerSpec(type=type_, name=name, bottoms=tuple(bottoms), params=params)


def two_branch_spec(out=4):
    """input -> (fc_a -> tanh_a | fc_b -> relu_b) -> concat -> fc_out."""
    return GraphSpec(
        name="fork",
        input_shape=(6,),
        layers=(
            L("InnerProduct", "fc_a", [INPUT], num_output=5),
            L("Tanh", "tanh_a", ["fc_a"]),
            L("InnerProduct", "fc_b", [INPUT], num_output=3),
            L("ReLU", "relu_b", ["fc_b"]),
            L("Concat", "merge", ["tanh_a", "relu_b"]),
            L("InnerProduct", "fc_out", ["merge"], num_output=out),
        ),
        output="fc_out",
    )


def residual_spec():
    """input -> fc1 -> tanh -> fc2 -> (+ input) -> out   (a residual add)."""
    return GraphSpec(
        name="residual",
        input_shape=(8,),
        layers=(
            L("InnerProduct", "fc1", [INPUT], num_output=8),
            L("Tanh", "act", ["fc1"]),
            L("InnerProduct", "fc2", ["act"], num_output=8),
            L("EltwiseSum", "add", ["fc2", INPUT]),
            L("InnerProduct", "out", ["add"], num_output=3),
        ),
        output="out",
    )


class TestMergeLayers:
    def test_concat_shapes_and_values(self, rng):
        layer = ConcatLayer("c")
        assert layer.setup([(3,), (5,)]) == (8,)
        a, b = rng.normal(size=(2, 3)), rng.normal(size=(2, 5))
        np.testing.assert_array_equal(layer.forward([a, b]), np.concatenate([a, b], 1))

    def test_concat_channels_for_images(self):
        layer = ConcatLayer("c")
        assert layer.setup([(4, 7, 7), (6, 7, 7)]) == (10, 7, 7)

    def test_concat_rejects_mismatched_trailing_dims(self):
        with pytest.raises(ShapeError, match="concat"):
            ConcatLayer("c").setup([(4, 7, 7), (6, 6, 7)])

    def test_concat_backward_splits(self, rng):
        layer = ConcatLayer("c")
        layer.setup([(3,), (5,)])
        layer.forward([rng.normal(size=(2, 3)), rng.normal(size=(2, 5))], train=True)
        dout = rng.normal(size=(2, 8))
        da, db = layer.backward(dout)
        np.testing.assert_array_equal(da, dout[:, :3])
        np.testing.assert_array_equal(db, dout[:, 3:])

    def test_eltwise_sum(self, rng):
        layer = EltwiseSumLayer("e")
        assert layer.setup([(4,), (4,), (4,)]) == (4,)
        xs = [rng.normal(size=(2, 4)) for _ in range(3)]
        np.testing.assert_allclose(layer.forward(xs), sum(xs))
        grads = layer.backward(np.ones((2, 4)))
        assert len(grads) == 3

    def test_eltwise_rejects_mismatch(self):
        with pytest.raises(ShapeError, match="differ"):
            EltwiseSumLayer("e").setup([(4,), (5,)])

    def test_merge_layers_are_stateless_at_inference(self, rng):
        layer = ConcatLayer("c")
        layer.setup([(2,), (2,)])
        layer.forward([rng.normal(size=(1, 2)), rng.normal(size=(1, 2))])
        assert not hasattr(layer, "_cache") or layer._cache is None


class TestGraphSpecValidation:
    def test_valid_spec(self):
        assert two_branch_spec().output == "fc_out"

    def test_forward_reference_rejected(self):
        with pytest.raises(ValueError, match="topological"):
            GraphSpec("bad", (4,), (
                L("ReLU", "a", ["b"]),
                L("ReLU", "b", [INPUT]),
            ), output="a")

    def test_duplicate_top_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            GraphSpec("bad", (4,), (
                L("ReLU", "a", [INPUT]), L("ReLU", "a", [INPUT]),
            ), output="a")

    def test_output_must_be_a_layer(self):
        with pytest.raises(ValueError, match="output"):
            GraphSpec("bad", (4,), (L("ReLU", "a", [INPUT]),), output="z")

    def test_reserved_input_name(self):
        with pytest.raises(ValueError, match="invalid layer name"):
            GraphSpec("bad", (4,), (L("ReLU", INPUT, [INPUT]),), output=INPUT)

    def test_single_input_layer_with_two_bottoms_rejected(self):
        with pytest.raises(ShapeError, match="one bottom"):
            GraphNet(GraphSpec("bad", (4,), (
                L("ReLU", "a", [INPUT]),
                L("ReLU", "b", [INPUT, "a"]),
            ), output="b"))


class TestGraphForward:
    def test_two_branch_matches_manual_computation(self, rng):
        net = GraphNet(two_branch_spec()).materialize(3)
        layers = {l.name: l for l in net.layers}
        x = rng.normal(size=(5, 6)).astype(np.float32)
        a = np.tanh(layers["fc_a"].forward(x))
        b = np.maximum(layers["fc_b"].forward(x), 0)
        manual = layers["fc_out"].forward(np.concatenate([a, b], axis=1))
        np.testing.assert_allclose(net.forward(x), manual, rtol=1e-5)

    def test_residual_add_uses_the_raw_input(self, rng):
        net = GraphNet(residual_spec()).materialize(0)
        layers = {l.name: l for l in net.layers}
        x = rng.normal(size=(2, 8)).astype(np.float32)
        inner = layers["fc2"].forward(np.tanh(layers["fc1"].forward(x)))
        manual = layers["out"].forward(inner + x)
        np.testing.assert_allclose(net.forward(x), manual, rtol=1e-5)

    def test_unmaterialized_raises(self):
        with pytest.raises(RuntimeError, match="not materialized"):
            GraphNet(two_branch_spec()).forward(np.zeros((1, 6)))

    def test_single_sample_convenience(self, rng):
        net = GraphNet(two_branch_spec()).materialize(0)
        assert net.forward(rng.normal(size=(6,))).shape == (1, 4)


class TestGraphBackward:
    @pytest.mark.parametrize("spec_factory", [two_branch_spec, residual_spec])
    def test_input_gradient_matches_numerical(self, rng, spec_factory):
        net = GraphNet(spec_factory()).materialize(1)
        x = rng.normal(size=(2, *net.input_shape))
        labels = np.array([0, 1])

        def loss_at(inp):
            return softmax_cross_entropy(net.forward(inp), labels)[0]

        net.forward(x, train=True)
        _, dlogits = softmax_cross_entropy(net.forward(x, train=True), labels)
        dx = net.backward(dlogits)
        num = numerical_gradient(loss_at, x.copy(), eps=1e-3)
        denom = max(1e-6, float(np.abs(num).max()))
        assert float(np.abs(dx - num).max()) / denom < 5e-2

    def test_fanned_out_input_receives_summed_gradient(self, rng):
        """The residual skip means d(input) has two contributions."""
        net = GraphNet(residual_spec()).materialize(2)
        x = rng.normal(size=(1, 8))
        y = net.forward(x, train=True)
        dx = net.backward(np.ones_like(y))
        # break the skip connection: gradient changes if fan-in is summed
        chain_only = GraphNet(GraphSpec(
            "chain", (8,), (
                L("InnerProduct", "fc1", [INPUT], num_output=8),
                L("Tanh", "act", ["fc1"]),
                L("InnerProduct", "fc2", ["act"], num_output=8),
                L("InnerProduct", "out", ["fc2"], num_output=3),
            ), output="out"))
        assert dx.shape == (1, 8)
        assert np.any(dx != 0.0)

    def test_graph_is_trainable(self, rng):
        """A forked net learns a separable problem with plain SGD steps."""
        net = GraphNet(two_branch_spec(out=2)).materialize(5)
        n = 120
        x = rng.normal(size=(n, 6)).astype(np.float32)
        labels = (x[:, 0] + x[:, 1] > 0).astype(int)
        first_loss = last_loss = None
        for step in range(150):
            logits = net.forward(x, train=True)
            loss, dlogits = softmax_cross_entropy(logits, labels)
            net.zero_grad()
            net.forward(x, train=True)
            net.backward(dlogits)
            for blob in net.params():
                blob.data -= 0.1 * blob.grad
            first_loss = first_loss if first_loss is not None else loss
            last_loss = loss
        assert last_loss < first_loss * 0.5


class TestGraphServing:
    def test_graphnet_serves_through_djinn(self, rng):
        """A DAG model drops into the registry/service unchanged."""
        from repro.core import DjinnClient, DjinnServer, ModelRegistry

        net = GraphNet(two_branch_spec()).materialize(0)
        registry = ModelRegistry()
        registry.register("fork", net)
        with DjinnServer(registry) as server:
            host, port = server.address
            with DjinnClient(host, port) as client:
                x = rng.normal(size=(3, 6)).astype(np.float32)
                remote = client.infer("fork", x)
                np.testing.assert_allclose(remote, net.forward(x), rtol=1e-5)

    def test_param_accounting(self):
        net = GraphNet(two_branch_spec())
        expected = (5 * 6 + 5) + (3 * 6 + 3) + (4 * 8 + 4)
        assert net.param_count() == expected
        assert net.param_bytes() == expected * 4

    def test_cost_analysis_works_on_graphs(self):
        """The gpusim cost contract extends to DAG networks for free."""
        from repro.nn import analyze

        cost = analyze(GraphNet(two_branch_spec()), batch=4)
        assert cost.gemm_count == 3  # fc_a, fc_b, fc_out
        # concat itself is free; the three GEMMs carry the flops
        assert cost.total_flops == 4 * (2 * 5 * 6 + 5 + 2 * 3 * 6 + 3 + 2 * 4 * 8 + 4
                                        + 5 + 3)  # + tanh/relu elementwise
