"""Model zoo conformance against the paper's Table 1."""

import numpy as np
import pytest

from repro.models import (
    APPLICATIONS,
    DEEPFACE_ORIGINAL_IDENTITIES,
    alexnet,
    build_net,
    build_spec,
    deepface,
    kaldi_asr,
    lenet5,
    model_info,
    senna,
    weighted_layer_count,
)
from repro.nn import Net


class TestTable1Conformance:
    """Parameter counts within 20% of Table 1's published values."""

    @pytest.mark.parametrize("app,expected", [
        ("imc", 60_000_000),
        ("dig", 60_000),
        ("asr", 30_000_000),
        ("pos", 180_000),
    ])
    def test_param_counts_match_paper(self, app, expected):
        params = build_net(app).param_count()
        assert 0.8 * expected < params < 1.2 * expected, (app, params)

    def test_face_matches_paper_at_original_identities(self):
        # Table 1's 120M corresponds to the original 4030-way DeepFace
        params = Net(deepface(DEEPFACE_ORIGINAL_IDENTITIES)).param_count()
        assert 0.85 * 120_000_000 < params < 1.15 * 120_000_000

    @pytest.mark.parametrize("app", APPLICATIONS)
    def test_network_type_matches(self, app):
        info = model_info(app)
        spec = build_spec(app)
        has_conv = any(s.type in ("Convolution", "LocallyConnected") for s in spec.layers)
        assert has_conv == (info.network_type == "CNN")

    def test_lenet_weighted_depth_is_7(self):
        assert weighted_layer_count(lenet5()) == 7

    def test_senna_weighted_depth_is_2_linear_stages(self):
        # the paper's "3 layers" counts linear-hardtanh-linear
        spec = senna("pos")
        assert [s.type for s in spec.layers[:3]] == ["InnerProduct", "HardTanh", "InnerProduct"]

    def test_alexnet_has_22_stages_before_softmax(self):
        spec = alexnet()
        assert spec.depth == 23  # 22 + inference softmax
        assert spec.layers[-1].type == "Softmax"

    def test_kaldi_is_13_weighted_plus_activation_stages(self):
        spec = kaldi_asr()
        affines = [s for s in spec.layers if s.type == "InnerProduct"]
        sigmoids = [s for s in spec.layers if s.type == "Sigmoid"]
        assert len(affines) == 7 and len(sigmoids) == 6  # 13 stages


class TestArchitectureShapes:
    def test_alexnet_output(self):
        net = Net(alexnet())
        assert net.input_shape == (3, 227, 227)
        assert net.output_shape == (1000,)

    def test_alexnet_fc6_fan_in_is_9216(self):
        net = Net(alexnet())
        fc6 = next(l for l in net.layers if l.name == "fc6")
        assert fc6.fan_in == 256 * 6 * 6

    def test_lenet_output(self):
        net = Net(lenet5())
        assert net.input_shape == (1, 32, 32)
        assert net.output_shape == (10,)

    def test_deepface_uses_locally_connected_layers(self):
        spec = deepface()
        lc = [s for s in spec.layers if s.type == "LocallyConnected"]
        assert [s.name for s in lc] == ["l4", "l5", "l6"]
        assert Net(spec).output_shape == (83,)

    def test_kaldi_input_is_spliced_fbank(self):
        net = Net(kaldi_asr())
        assert net.input_shape == (440,)
        assert net.output_shape == (3483,)

    @pytest.mark.parametrize("task,tags", [("pos", 45), ("chk", 23), ("ner", 9)])
    def test_senna_tag_outputs(self, task, tags):
        assert Net(senna(task)).output_shape == (tags,)

    def test_include_softmax_false_strips_final_layer(self):
        for factory in (alexnet, lenet5, deepface, kaldi_asr):
            spec = factory(include_softmax=False)
            assert spec.layers[-1].type != "Softmax"


class TestRegistryApi:
    def test_unknown_app_lists_candidates(self):
        with pytest.raises(ValueError, match="known"):
            model_info("speech")

    def test_build_net_materialize(self):
        net = build_net("dig", materialize=True, seed=2)
        assert net.materialized
        out = net.forward(np.zeros((1, 1, 32, 32), np.float32))
        np.testing.assert_allclose(out.sum(), 1.0, rtol=1e-5)

    def test_small_models_forward_pass(self, rng):
        for app in ("dig", "pos", "chk", "ner"):
            net = build_net(app, materialize=True)
            x = rng.normal(size=(2, *net.input_shape)).astype(np.float32)
            y = net.forward(x)
            assert y.shape == (2, *net.output_shape)
            np.testing.assert_allclose(y.sum(axis=1), 1.0, rtol=1e-4)

    def test_applications_ordering_matches_paper(self):
        assert APPLICATIONS == ("imc", "dig", "face", "asr", "pos", "chk", "ner")
