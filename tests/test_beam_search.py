"""Beam-search decoder tests: convergence to exact Viterbi, admissibility."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tonic.viterbi import beam_search, viterbi, viterbi_score


def random_lattice(steps, states, seed):
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(steps, states)),
            rng.normal(size=(states, states)),
            rng.normal(size=states))


class TestBeamSearch:
    def test_full_beam_equals_exact_viterbi(self):
        em, tr, init = random_lattice(12, 6, 0)
        exact_path, exact_score = viterbi(em, tr, init)
        beam_path, beam_score = beam_search(em, tr, init, beam_width=6)
        assert beam_path == exact_path
        assert beam_score == pytest.approx(exact_score)

    @settings(max_examples=25, deadline=None)
    @given(
        steps=st.integers(1, 10),
        states=st.integers(2, 8),
        width=st.integers(1, 8),
        seed=st.integers(0, 1000),
    )
    def test_never_beats_exact_and_score_is_consistent(self, steps, states, width, seed):
        """Property: beam score <= exact score, and the returned score is
        the true score of the returned path."""
        em, tr, init = random_lattice(steps, states, seed)
        _, exact = viterbi(em, tr, init)
        path, score = beam_search(em, tr, init, beam_width=width)
        assert score <= exact + 1e-9
        assert viterbi_score(path, em, tr, init) == pytest.approx(score, rel=1e-9)

    def test_wider_beams_help_on_average(self):
        """Beam search is NOT monotone in width per instance (a pruned state
        can own the only good continuation — hypothesis found such cases),
        but across many lattices wider beams close most of the gap to exact
        Viterbi."""
        import numpy as np

        regret = {w: [] for w in (1, 2, 4, 8)}
        for seed in range(60):
            em, tr, init = random_lattice(10, 8, seed)
            _, exact = viterbi(em, tr, init)
            for w in regret:
                regret[w].append(exact - beam_search(em, tr, init, beam_width=w)[1])
        means = {w: float(np.mean(r)) for w, r in regret.items()}
        assert means[8] <= 1e-9                 # full width is exact
        assert means[1] >= means[4] >= means[8]  # average regret shrinks
        assert all(min(r) >= -1e-9 for r in regret.values())  # never beats exact

    def test_beam_one_is_greedy(self):
        """Width 1 follows the locally best extension at every step."""
        em = np.log(np.array([[0.9, 0.1], [0.1, 0.9]]))
        tr = np.log(np.array([[0.9, 0.1], [0.1, 0.9]]))
        path, _ = beam_search(em, tr, beam_width=1)
        assert path[0] == 0  # greedy start on the locally best state

    def test_empty_sequence(self):
        path, score = beam_search(np.zeros((0, 3)), np.zeros((3, 3)))
        assert path == [] and score == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            beam_search(np.zeros((2, 3)), np.zeros((3, 3)), beam_width=0)
        with pytest.raises(ValueError):
            beam_search(np.zeros((2, 3)), np.zeros((2, 2)))

    def test_handles_forbidden_transitions(self):
        """-inf transitions (the ASR HMM's structure) must not crash."""
        em = np.zeros((5, 4))
        tr = np.full((4, 4), -np.inf)
        for i in range(4):
            tr[i, i] = np.log(0.5)
            tr[i, (i + 1) % 4] = np.log(0.5)
        path, score = beam_search(em, tr, beam_width=2)
        assert len(path) == 5
        assert np.isfinite(score)


class TestAsrBeamDecoding:
    @pytest.fixture(scope="class")
    def backend(self):
        from repro.nn import LayerSpec, Net, NetSpec
        from repro.tonic import LocalBackend

        spec = NetSpec("am", (440,), (
            LayerSpec("InnerProduct", "h", {"num_output": 32}),
            LayerSpec("Sigmoid", "s"),
            LayerSpec("InnerProduct", "o", {"num_output": 48}),
            LayerSpec("Softmax", "p"),
        ))
        return LocalBackend(Net(spec).materialize(0))

    def test_beam_app_runs_end_to_end(self, backend):
        from repro.tonic import AsrApp, synthesize_words

        app = AsrApp(backend, beam_width=8)
        audio, _ = synthesize_words(["go"], seed=1)
        transcript = app.run(audio)
        assert np.isfinite(transcript.log_score)

    def test_wide_beam_matches_exact_decoder(self, backend):
        from repro.tonic import AsrApp, synthesize_words

        exact = AsrApp(backend)
        wide = AsrApp(backend, beam_width=48)
        audio, _ = synthesize_words(["stop", "go"], seed=2)
        assert wide.run(audio).words == exact.run(audio).words

    def test_bad_beam_rejected(self, backend):
        from repro.tonic import AsrApp

        with pytest.raises(ValueError):
            AsrApp(backend, beam_width=0)
