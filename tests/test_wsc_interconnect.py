"""Interconnect config tests (Table 6 arithmetic)."""

import pytest

from repro.gpusim.pcie import ethernet_effective_gbs
from repro.wsc import CONFIGS, PCIE3_10GBE, PCIE4_40GBE, QPI_400GBE


class TestTable6Arithmetic:
    def test_baseline_network_matches_paper_footnote(self):
        """Paper footnote 1: 16 x 10GbE at 80% of theoretical peak = 16 GB/s."""
        assert PCIE3_10GBE.network_gbs_per_host == pytest.approx(16.0)

    def test_pcie_v4_network_sized_to_saturate_the_bus(self):
        """Paper §6.4: 9 teamed 40GbE connections saturate PCIe v4."""
        assert PCIE4_40GBE.nics_per_gpu_host == 9
        assert PCIE4_40GBE.network_gbs_per_host >= 31.75

    def test_qpi_network_sized_to_saturate_the_links(self):
        """Paper §6.4: 8 teamed 400GbE saturate 12 QPI links (307.2 GB/s)."""
        assert QPI_400GBE.nics_per_gpu_host == 8
        assert QPI_400GBE.network_gbs_per_host >= 307.2

    def test_ethernet_overhead_is_20pct(self):
        assert ethernet_effective_gbs(1.25) == pytest.approx(1.0)

    def test_generations_strictly_improve_host_feed(self):
        feeds = [c.host_bottleneck_gbs for c in CONFIGS]
        assert feeds[0] < feeds[1] < feeds[2]

    def test_bottleneck_is_min_of_network_and_link(self):
        for config in CONFIGS:
            assert config.host_bottleneck_gbs == pytest.approx(
                min(config.network_gbs_per_host, config.host_link_gbs)
            )

    def test_qpi_hosts_carry_12_gpus(self):
        """Paper §6.4 assumes 12 GPUs inside a 2-socket QPI server."""
        assert QPI_400GBE.gpus_per_disagg_host == 12
        assert QPI_400GBE.gpus_per_integrated_server == 12

    def test_upgrade_costs_monotone(self):
        costs = [c.interconnect_upgrade_per_server for c in CONFIGS]
        assert costs[0] <= costs[1] <= costs[2]

    def test_nic_prices_rise_with_generation(self):
        factors = [c.nic_cost_factor for c in CONFIGS]
        assert factors[0] < factors[1] < factors[2]
