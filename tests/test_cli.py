"""CLI tests: serve + query over a real socket, models, plan."""

import threading
import time

import pytest

from repro.cli import main


class TestModels:
    def test_lists_all_seven(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for app in ("imc", "dig", "face", "asr", "pos", "chk", "ner"):
            assert app in out
        assert "AlexNet" in out and "DeepFace" in out


class TestPlan:
    def test_prints_capacity_and_tco(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "QPS/GPU" in out
        assert "cpu_only" in out and "disaggregated" in out


class TestServeAndQuery:
    @pytest.fixture
    def live_server(self):
        """Run `djinn serve` on a free port in a thread; stop it afterwards."""
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main, args=(["serve", "--models", "dig,pos", "--port", str(port)],),
            daemon=True,
        )
        thread.start()
        # wait for the port to accept connections
        deadline = time.time() + 10
        while time.time() < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
                break
            except OSError:
                time.sleep(0.05)
        else:
            pytest.fail("server never came up")
        yield port
        from repro.core import DjinnClient
        DjinnClient("127.0.0.1", port).shutdown_server()
        thread.join(timeout=5)

    def test_query_dig(self, live_server, capsys):
        assert main(["query", "--port", str(live_server), "--app", "dig",
                     "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "predictions:" in out
        assert "dnn" in out

    def test_query_pos(self, live_server, capsys):
        assert main(["query", "--port", str(live_server), "--app", "pos"]) == 0
        out = capsys.readouterr().out
        assert "/" in out  # word/TAG pairs

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["serve", "--models", "bert"])

    def test_load_flag_serves_saved_models(self, tmp_path, capsys):
        """`djinn serve --load path=name` serves a save_net archive."""
        import socket

        from repro.core import DjinnClient
        from repro.models import senna
        from repro.nn import Net, save_net

        path = tmp_path / "trained_pos.npz"
        save_net(Net(senna("pos")).materialize(7), path)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main,
            args=(["serve", "--models", "", "--load", f"{path}=mypos",
                   "--port", str(port)],),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 10
        client = None
        while time.time() < deadline:
            try:
                client = DjinnClient("127.0.0.1", port, timeout_s=1.0)
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "server never came up"
        try:
            assert client.list_models() == ["mypos"]
        finally:
            client.shutdown_server()
            thread.join(timeout=5)

    def test_load_flag_rejects_malformed_entry(self):
        with pytest.raises(SystemExit, match="PATH=NAME"):
            main(["serve", "--models", "", "--load", "nonsense"])


class TestGatewayCommand:
    def test_gateway_fronts_fleet_and_serves_queries(self):
        """`djinn gateway --backends 2` serves unchanged clients."""
        import socket

        import numpy as np

        from repro.core import DjinnClient

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main,
            args=(["gateway", "--backends", "2", "--models", "pos",
                   "--port", str(port), "--policy", "round_robin"],),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 15
        client = None
        while time.time() < deadline:
            try:
                client = DjinnClient("127.0.0.1", port, timeout_s=1.0)
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "gateway never came up"
        try:
            assert client.list_models() == ["pos"]
            out = client.infer("pos", np.zeros((1, 300), np.float32))
            assert out.shape == (1, 45)
            stats = client.stats()
            assert stats["pos"]["requests"] == 1.0
        finally:
            client.shutdown_server()
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_gateway_qos_flags(self):
        """`djinn gateway --sched adaptive --admission ...` arms QoS
        end-to-end: deadline-stamped queries serve, doomed ones come back
        as typed deadline errors."""
        import socket

        import numpy as np

        from repro.core import DjinnClient, DjinnDeadlineError

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main,
            args=(["gateway", "--backends", "1", "--models", "pos",
                   "--port", str(port), "--batch", "4",
                   "--sched", "adaptive", "--admission",
                   "--tenant-qps", "100"],),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 15
        client = None
        while time.time() < deadline:
            try:
                client = DjinnClient("127.0.0.1", port, timeout_s=10.0)
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "gateway never came up"
        try:
            out = client.infer("pos", np.zeros((1, 300), np.float32),
                               deadline_ms=30000.0, priority=2, tenant="cli")
            assert out.shape == (1, 45)
            with pytest.raises(DjinnDeadlineError):
                client.infer("pos", np.zeros((1, 300), np.float32),
                             deadline_ms=0.0001)
        finally:
            client.shutdown_server()
            thread.join(timeout=10)
        assert not thread.is_alive()
