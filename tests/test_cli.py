"""CLI tests: serve + query over a real socket, models, plan, observability."""

import json
import threading
import time

import pytest

from repro.cli import main


class TestModels:
    def test_lists_all_seven(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        for app in ("imc", "dig", "face", "asr", "pos", "chk", "ner"):
            assert app in out
        assert "AlexNet" in out and "DeepFace" in out


class TestPlan:
    def test_prints_capacity_and_tco(self, capsys):
        assert main(["plan"]) == 0
        out = capsys.readouterr().out
        assert "QPS/GPU" in out
        assert "cpu_only" in out and "disaggregated" in out


class TestServeAndQuery:
    @pytest.fixture
    def live_server(self):
        """Run `djinn serve` on a free port in a thread; stop it afterwards."""
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main, args=(["serve", "--models", "dig,pos", "--port", str(port)],),
            daemon=True,
        )
        thread.start()
        # wait for the port to accept connections
        deadline = time.time() + 10
        while time.time() < deadline:
            try:
                socket.create_connection(("127.0.0.1", port), timeout=0.2).close()
                break
            except OSError:
                time.sleep(0.05)
        else:
            pytest.fail("server never came up")
        yield port
        from repro.core import DjinnClient
        DjinnClient("127.0.0.1", port).shutdown_server()
        thread.join(timeout=5)

    def test_query_dig(self, live_server, capsys):
        assert main(["query", "--port", str(live_server), "--app", "dig",
                     "--count", "3"]) == 0
        out = capsys.readouterr().out
        assert "predictions:" in out
        assert "dnn" in out

    def test_query_pos(self, live_server, capsys):
        assert main(["query", "--port", str(live_server), "--app", "pos"]) == 0
        out = capsys.readouterr().out
        assert "/" in out  # word/TAG pairs

    def test_unknown_model_rejected(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["serve", "--models", "bert"])

    def test_metrics_json_is_machine_readable(self, live_server, capsys):
        """`djinn metrics --json` emits the raw dump as parseable JSON."""
        assert main(["query", "--port", str(live_server), "--app", "dig",
                     "--count", "1"]) == 0
        capsys.readouterr()  # drop the query's human output
        assert main(["metrics", "--port", str(live_server), "--json"]) == 0
        dump = json.loads(capsys.readouterr().out)
        entry = dump["metrics"]["djinn_requests_total"]
        assert entry["type"] == "counter"
        assert any(s["labels"].get("model") == "dig"
                   for s in entry["samples"])

    def test_load_flag_serves_saved_models(self, tmp_path, capsys):
        """`djinn serve --load path=name` serves a save_net archive."""
        import socket

        from repro.core import DjinnClient
        from repro.models import senna
        from repro.nn import Net, save_net

        path = tmp_path / "trained_pos.npz"
        save_net(Net(senna("pos")).materialize(7), path)
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main,
            args=(["serve", "--models", "", "--load", f"{path}=mypos",
                   "--port", str(port)],),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 10
        client = None
        while time.time() < deadline:
            try:
                client = DjinnClient("127.0.0.1", port, timeout_s=1.0)
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "server never came up"
        try:
            assert client.list_models() == ["mypos"]
        finally:
            client.shutdown_server()
            thread.join(timeout=5)

    def test_load_flag_rejects_malformed_entry(self):
        with pytest.raises(SystemExit, match="PATH=NAME"):
            main(["serve", "--models", "", "--load", "nonsense"])


class TestTraceCommand:
    def test_trace_json_emits_parseable_trace(self, tmp_path, capsys):
        """`djinn trace --json` prints one span tree as JSON on stdout;
        progress chatter moves to stderr so the payload stays parseable."""
        out_path = tmp_path / "trace.json"
        assert main(["trace", "--backends", "1", "--models", "pos",
                     "--requests", "2", "--batch", "4", "--json",
                     "--out", str(out_path)]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"trace_id", "coverage", "spans"}
        assert payload["coverage"] >= 0.95
        names = {span["name"] for span in payload["spans"]}
        assert {"client.infer", "gateway.infer", "backend.infer",
                "net.forward"} <= names
        # every span round-trips its ids as 16-hex-digit strings
        for span in payload["spans"]:
            assert span["trace_id"] == payload["trace_id"]
            int(span["span_id"], 16)
        assert json.loads(out_path.read_text())["traceEvents"]


class TestSlowCommand:
    def test_slow_reports_cost_ledger_for_tail_exemplars(self, capsys):
        """`djinn slow` resolves the latency histogram's tail exemplars to
        full span trees and cost ledgers."""
        assert main(["slow", "--backends", "1", "--models", "pos",
                     "--requests", "8", "--batch", "4", "--top", "2"]) == 0
        out = capsys.readouterr().out
        assert "=== #1 slowest:" in out
        assert "client.infer" in out  # span tree
        assert "net.forward" in out and "unattributed" in out  # ledger
        assert "coverage" in out

    def test_slow_json(self, capsys):
        assert main(["slow", "--backends", "1", "--models", "pos",
                     "--requests", "6", "--batch", "4", "--top", "1",
                     "--json"]) == 0
        reports = json.loads(capsys.readouterr().out)
        assert reports and reports[0]["rank"] == 1
        ledger = reports[0]["ledger"]
        assert ledger["trace_id"] == reports[0]["trace_id"]
        assert set(ledger["shares"]) > {"net.forward", "unattributed"}
        assert sum(ledger["shares"].values()) == pytest.approx(1.0)
        assert reports[0]["spans"]


class TestTopCommand:
    def test_top_renders_fleet_frame(self, capsys):
        """`djinn top --iterations 1` polls a live server twice and renders
        one frame: per-model qps/percentiles/burn plus stage breakdown."""
        import socket

        from repro.core import DjinnClient

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main,
            args=(["serve", "--models", "pos", "--port", str(port),
                   "--batch", "4"],),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 10
        client = None
        while time.time() < deadline:
            try:
                client = DjinnClient("127.0.0.1", port, timeout_s=5.0)
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "server never came up"
        try:
            import numpy as np

            for _ in range(4):
                client.infer("pos", np.zeros((1, 300), np.float32))
            assert main(["top", "--port", str(port), "--interval", "0.2",
                         "--iterations", "1"]) == 0
        finally:
            client.shutdown_server()
            thread.join(timeout=5)
        out = capsys.readouterr().out
        assert f"djinn top — 127.0.0.1:{port}" in out
        assert "qps" in out and "p99ms" in out
        assert "pos" in out
        assert "stage breakdown" in out and "net.forward" in out

    def test_top_unreachable_host_fails_cleanly(self, capsys):
        import socket

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]  # nothing listens here
        assert main(["top", "--port", str(port), "--iterations", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().err


class TestGatewayCommand:
    def test_gateway_fronts_fleet_and_serves_queries(self):
        """`djinn gateway --backends 2` serves unchanged clients."""
        import socket

        import numpy as np

        from repro.core import DjinnClient

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main,
            args=(["gateway", "--backends", "2", "--models", "pos",
                   "--port", str(port), "--policy", "round_robin"],),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 15
        client = None
        while time.time() < deadline:
            try:
                client = DjinnClient("127.0.0.1", port, timeout_s=1.0)
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "gateway never came up"
        try:
            assert client.list_models() == ["pos"]
            out = client.infer("pos", np.zeros((1, 300), np.float32))
            assert out.shape == (1, 45)
            stats = client.stats()
            assert stats["pos"]["requests"] == 1.0
        finally:
            client.shutdown_server()
            thread.join(timeout=10)
        assert not thread.is_alive()

    def test_gateway_qos_flags(self):
        """`djinn gateway --sched adaptive --admission ...` arms QoS
        end-to-end: deadline-stamped queries serve, doomed ones come back
        as typed deadline errors."""
        import socket

        import numpy as np

        from repro.core import DjinnClient, DjinnDeadlineError

        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]
        thread = threading.Thread(
            target=main,
            args=(["gateway", "--backends", "1", "--models", "pos",
                   "--port", str(port), "--batch", "4",
                   "--sched", "adaptive", "--admission",
                   "--tenant-qps", "100"],),
            daemon=True,
        )
        thread.start()
        deadline = time.time() + 15
        client = None
        while time.time() < deadline:
            try:
                client = DjinnClient("127.0.0.1", port, timeout_s=10.0)
                break
            except OSError:
                time.sleep(0.05)
        assert client is not None, "gateway never came up"
        try:
            out = client.infer("pos", np.zeros((1, 300), np.float32),
                               deadline_ms=30000.0, priority=2, tenant="cli")
            assert out.shape == (1, 45)
            with pytest.raises(DjinnDeadlineError):
                client.infer("pos", np.zeros((1, 300), np.float32),
                             deadline_ms=0.0001)
        finally:
            client.shutdown_server()
            thread.join(timeout=10)
        assert not thread.is_alive()
