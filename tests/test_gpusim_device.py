"""Device spec arithmetic and calibration-constant sanity."""

import pytest

from repro.gpusim import K40, PLATFORM, XEON_E5_2620V2_CORE


class TestK40:
    def test_peak_flops_matches_published_spec(self):
        # 2880 cores x 745 MHz x 2 (FMA) = 4.29 TFLOP/s SP
        assert K40.peak_gflops == pytest.approx(4291.2, rel=1e-3)

    def test_thread_capacity(self):
        assert K40.max_threads == 15 * 2048

    def test_effective_memory_below_peak(self):
        assert 0 < K40.effective_mem_gbs < K40.mem_bandwidth_gbs

    def test_memory_capacity_is_12gb(self):
        assert K40.mem_bytes == 12 * 1024**3

    def test_mps_client_limit_is_16(self):
        # the paper sweeps 1..16 concurrent processes (Kepler's MPS limit)
        assert K40.max_concurrent_processes == 16

    def test_calibration_constants_in_sane_ranges(self):
        assert 0.1 < K40.gemm_efficiency < 0.9
        assert 0.5 < K40.mem_efficiency <= 1.0
        assert 0.0 < K40.occupancy_cap <= 1.0
        assert K40.lc_mem_penalty >= 1.0


class TestXeonCore:
    def test_peak_flops(self):
        # 2.1 GHz x 8 SP FLOPs/cycle (AVX FMA-less Ivy Bridge mul+add)
        assert XEON_E5_2620V2_CORE.peak_gflops == pytest.approx(16.8)

    def test_gpu_to_cpu_peak_ratio_is_about_255(self):
        """The raw silicon ratio the paper's speedups are bounded by."""
        ratio = K40.peak_gflops / XEON_E5_2620V2_CORE.peak_gflops
        assert 200 < ratio < 300


class TestPlatform:
    def test_matches_table2(self):
        assert PLATFORM.gpus == 8
        assert PLATFORM.total_cores == 12
        assert PLATFORM.gpu is K40

    def test_host_link_is_two_root_complexes(self):
        assert PLATFORM.host_link_gbs == pytest.approx(2 * PLATFORM.pcie_per_gpu_gbs)

    def test_all_models_fit_in_gpu_memory(self):
        """The DjiNN registry pins every Tonic model in GPU DRAM at once."""
        from repro.models import APPLICATIONS, build_net

        resident = sum(build_net(app).param_bytes() for app in APPLICATIONS)
        assert resident < K40.mem_bytes * 0.5  # plenty of headroom for activations
