"""Unit tests for the speech DSP frontend."""

import numpy as np
import pytest

from repro.tonic.dsp import (
    FrontendConfig,
    fbank_features,
    frame_signal,
    mel_filterbank,
    mfcc,
    splice,
)

CONFIG = FrontendConfig()


class TestConfig:
    def test_default_frame_geometry(self):
        assert CONFIG.frame_len == 400      # 25ms @ 16kHz
        assert CONFIG.hop_len == 160        # 10ms @ 16kHz
        assert CONFIG.fft_size == 512       # next power of two


class TestFraming:
    def test_frame_count(self, rng):
        signal = rng.normal(size=16000)  # 1 second
        frames = frame_signal(signal, CONFIG)
        assert frames.shape == (1 + (16000 - 400) // 160, 400)

    def test_short_signal_padded_to_one_frame(self, rng):
        frames = frame_signal(rng.normal(size=100), CONFIG)
        assert frames.shape == (1, 400)

    def test_rejects_stereo(self, rng):
        with pytest.raises(ValueError, match="mono"):
            frame_signal(rng.normal(size=(100, 2)), CONFIG)

    def test_hamming_window_applied(self):
        frames = frame_signal(np.ones(400), CONFIG)
        # pre-emphasis leaves sample 0 at 1.0; window edge ~0.08 (Hamming)
        assert frames[0, 0] == pytest.approx(np.hamming(400)[0])


class TestMelFilterbank:
    def test_shape(self):
        fb = mel_filterbank(CONFIG)
        assert fb.shape == (40, 257)

    def test_filters_are_normalized_triangles(self):
        fb = mel_filterbank(CONFIG)
        assert np.all(fb >= 0.0)
        assert np.all(fb.max(axis=1) == 1.0)

    def test_filters_cover_the_band_without_gaps(self):
        fb = mel_filterbank(CONFIG)
        coverage = fb.sum(axis=0)
        low_bin = int(np.ceil(CONFIG.low_hz * CONFIG.fft_size / CONFIG.sample_rate)) + 2
        high_bin = int(CONFIG.high_hz * CONFIG.fft_size / CONFIG.sample_rate) - 2
        assert np.all(coverage[low_bin:high_bin] > 0.0)

    def test_center_frequencies_increase(self):
        fb = mel_filterbank(CONFIG)
        centers = fb.argmax(axis=1)
        assert np.all(np.diff(centers) >= 0)


class TestFeatures:
    def test_fbank_shape_and_normalization(self, rng):
        feats = fbank_features(rng.normal(size=8000))
        assert feats.shape[1] == 40
        np.testing.assert_allclose(feats.mean(axis=0), 0.0, atol=1e-6)

    def test_fbank_distinguishes_tones(self):
        t = np.arange(8000) / 16000
        low = fbank_features(np.sin(2 * np.pi * 300 * t))
        high = fbank_features(np.sin(2 * np.pi * 3000 * t))
        # peak mel channel should be different for the two tones
        assert low.mean(axis=0).argmax() != high.mean(axis=0).argmax()

    def test_mfcc_shape(self, rng):
        assert mfcc(rng.normal(size=8000), num_ceps=13).shape[1] == 13


class TestSplice:
    def test_output_width(self, rng):
        feats = rng.normal(size=(20, 40))
        assert splice(feats, context=5).shape == (20, 11 * 40)

    def test_center_slice_is_the_frame_itself(self, rng):
        feats = rng.normal(size=(10, 4))
        spliced = splice(feats, context=2)
        np.testing.assert_array_equal(spliced[:, 2 * 4 : 3 * 4], feats)

    def test_edges_replicate(self, rng):
        feats = rng.normal(size=(5, 3))
        spliced = splice(feats, context=2)
        # leftmost context of the first frame is the first frame itself
        np.testing.assert_array_equal(spliced[0, :3], feats[0])

    def test_rejects_bad_rank(self, rng):
        with pytest.raises(ValueError):
            splice(rng.normal(size=(5,)))
