"""Chaos tests: the fault-injection layer and end-to-end serving invariants.

The scenario tests run a real gateway + backend fleet under seeded fault
plans (``repro.faults``) and assert the :class:`ChaosReport` invariants:
no request lost or answered with the wrong payload, retries within the
``RetryPolicy`` budget and equal to ``gateway_retries_total``, health
transitions consistent with the injected faults, and one closed
``client.infer`` root span per request.

Determinism is itself under test: the same plan seed must produce the
byte-identical report.  Set ``CHAOS_REPORT_DIR`` to dump every scenario
report as JSON — CI runs this module twice with the same ``CHAOS_SEED``
into two directories and diffs them.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import DjinnServer, ModelRegistry
from repro.core.client import DjinnClient, DjinnConnectionError
from repro.core import faultsite
from repro.faults import (
    SCENARIOS,
    ChaosReport,
    FaultInjector,
    FaultPlan,
    FaultRule,
    InjectedFault,
    run_scenario,
)
from repro.models import build_spec


@pytest.fixture(scope="module")
def registry():
    reg = ModelRegistry()
    reg.register_spec("pos", build_spec("pos"), seed=0)
    # the app_preprocess_poison scenario drives raw-payload (APP_REQUEST)
    # load, which needs a model with a default serving app
    reg.register_spec("dig", build_spec("dig"), seed=0)
    return reg


def _emit_report(report):
    """Write the report where the CI determinism gate can diff it."""
    out_dir = os.environ.get("CHAOS_REPORT_DIR")
    if not out_dir:
        return
    Path(out_dir).mkdir(parents=True, exist_ok=True)
    path = Path(out_dir) / f"{report.scenario}_{report.seed}.json"
    path.write_text(report.to_json() + "\n")


# --------------------------------------------------------------------- plans
class TestFaultRuleValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultRule("protocol.sendd", "reset", nth=(1,))

    def test_kind_must_match_site(self):
        with pytest.raises(ValueError, match="does not honour"):
            FaultRule("health.probe", "reset", nth=(1,))

    def test_rule_needs_a_trigger(self):
        with pytest.raises(ValueError, match="needs a trigger"):
            FaultRule("protocol.send", "reset")

    def test_nth_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            FaultRule("protocol.send", "reset", nth=(0,))

    def test_probability_bounds(self):
        with pytest.raises(ValueError, match="probability"):
            FaultRule("protocol.send", "reset", probability=1.5)

    def test_plan_json_roundtrip(self):
        plan = FaultPlan(
            rules=(FaultRule("protocol.send", "truncate", scope="INFER_RESPONSE",
                             nth=(2, 5), bytes_kept=12),
                   FaultRule("pool.checkout", "refuse", probability=0.1, limit=3)),
            seed=42, name="roundtrip")
        restored = FaultPlan.from_dict(json.loads(plan.to_json()))
        assert restored == plan
        assert restored.to_json() == plan.to_json()


class TestFaultSiteArming:
    def test_disarmed_by_default(self):
        assert faultsite.active is None

    def test_armed_plan_installs_and_uninstalls(self):
        plan = FaultPlan(rules=(FaultRule("protocol.send", "reset", nth=(1,)),))
        with plan.armed() as injector:
            assert faultsite.active is injector
            assert isinstance(injector, FaultInjector)
        assert faultsite.active is None

    def test_double_arming_rejected(self):
        plan = FaultPlan(rules=())
        with plan.armed():
            with pytest.raises(RuntimeError, match="already armed"):
                with plan.armed():
                    pass
        assert faultsite.active is None

    def test_rearming_builds_fresh_counters(self):
        """The same plan object replays identically: counters re-zero."""
        plan = FaultPlan(rules=(FaultRule("health.probe", "flap", nth=(1,)),))
        for _ in range(2):
            with plan.armed() as injector:
                assert injector.on_probe("b1") is True   # event 1: fires
                assert injector.on_probe("b1") is False  # event 2: spent
                assert injector.fires() == {"health.probe:flap:*": 1}


class TestInjectorTriggers:
    def test_nth_fires_on_exact_ordinals(self):
        plan = FaultPlan(rules=(FaultRule("server.accept", "refuse", nth=(2, 4)),))
        with plan.armed() as injector:
            assert [injector.on_accept("djinn") for _ in range(5)] \
                == [False, True, False, True, False]

    def test_scope_filters_event_stream(self):
        plan = FaultPlan(rules=(FaultRule("server.accept", "refuse",
                                          scope="djinn", nth=(1,)),))
        with plan.armed() as injector:
            assert injector.on_accept("gateway") is False  # wrong scope
            assert injector.on_accept("djinn") is True     # djinn event 1

    def test_every_and_limit(self):
        plan = FaultPlan(rules=(FaultRule("server.accept", "refuse",
                                          every=2, limit=2),))
        with plan.armed() as injector:
            fired = [injector.on_accept("djinn") for _ in range(8)]
            assert fired == [False, True, False, True, False, False, False, False]

    def test_probability_is_seed_deterministic(self):
        rule = FaultRule("server.accept", "refuse", probability=0.3)
        outcomes = []
        for _ in range(2):
            with FaultPlan(rules=(rule,), seed=9).armed() as injector:
                outcomes.append([injector.on_accept("djinn") for _ in range(30)])
        assert outcomes[0] == outcomes[1]
        assert any(outcomes[0])  # at p=0.3 over 30 draws, some fire

    def test_checkout_refusal_is_typed(self):
        plan = FaultPlan(rules=(FaultRule("pool.checkout", "refuse", nth=(1,)),))
        with plan.armed() as injector:
            with pytest.raises(DjinnConnectionError, match="injected refusal"):
                injector.on_checkout("127.0.0.1:1")

    def test_injected_fault_is_a_connection_error(self):
        # existing `except (ConnectionError, OSError)` paths must treat an
        # injected fault exactly like a real transport failure
        assert issubclass(InjectedFault, ConnectionError)


# ------------------------------------------------------------------ report
class TestChaosReport:
    def test_clean_report_has_no_violations(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, traces=4)
        assert report.check() == []
        assert report.lost == 0

    def test_lost_requests_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=3,
                             retry_budget=3, traces=4)
        assert report.lost == 1
        assert any("lost" in v for v in report.check())

    def test_duplicated_payloads_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=3,
                             mismatched=1, retry_budget=3, traces=4)
        assert any("wrong payload" in v for v in report.check())

    def test_retry_log_metric_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, retries_logged=2,
                             retries_metric=3, traces=4)
        assert any("gateway_retries_total" in v for v in report.check())

    def test_retry_budget_overrun_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=2, ok=2,
                             retry_budget=2, retries_logged=5,
                             retries_metric=5, traces=2)
        assert any("budget" in v for v in report.check())

    def test_missing_trace_root_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, traces=3)
        assert any("client.infer" in v for v in report.check())

    def test_json_is_stable(self):
        report = ChaosReport(scenario="s", seed=1, requests=2, ok=2,
                             retry_budget=3, traces=2)
        assert report.to_json() == report.to_json()
        assert json.loads(report.to_json())["violations"] == []


# --------------------------------------------------------------- scenarios
class TestScenarios:
    """Every catalog scenario must hold the end-to-end invariants."""

    @pytest.mark.parametrize("name", list(SCENARIOS))
    def test_invariants_hold(self, name, registry, chaos_seed):
        report = run_scenario(name, seed=chaos_seed, registry=registry)
        _emit_report(report)
        assert report.check() == [], report.to_json()
        assert report.lost == 0
        assert report.mismatched == 0

    def test_baseline_is_fault_free(self, registry, chaos_seed):
        report = run_scenario("baseline", seed=chaos_seed, registry=registry)
        assert report.ok == report.requests
        assert report.injected == {}
        assert report.retries_metric == 0

    def test_conn_reset_absorbed_by_retries(self, registry, chaos_seed):
        report = run_scenario("conn_reset", seed=chaos_seed, registry=registry)
        assert report.ok == report.requests          # client never saw a fault
        assert report.retries_metric == 2            # one per injected reset
        assert report.retries_logged == 2
        assert report.injected == {"protocol.send:reset:INFER_REQUEST": 2}

    def test_client_stall_surfaces_one_error_no_stale_reads(self, registry,
                                                            chaos_seed):
        """The DjinnClient half-state regression scenario: the timed-out
        request fails typed; no later request reads its stale response."""
        report = run_scenario("client_stall_timeout", seed=chaos_seed,
                              registry=registry)
        assert report.errors == {"DjinnConnectionError": 1}
        assert report.mismatched == 0
        assert report.ok == report.requests - 1

    def test_checkout_refusals_recover_through_probes(self, registry,
                                                      chaos_seed):
        report = run_scenario("checkout_refused", seed=chaos_seed,
                              registry=registry)
        assert report.ok == report.requests
        # both backends marked down in turn, both recovered by the
        # fleet-down probe sweep
        assert report.transitions == {"mark_down": 2, "mark_up": 2}

    def test_probe_flaps_match_transitions(self, registry, chaos_seed):
        report = run_scenario("probe_flap", seed=chaos_seed, registry=registry)
        flaps = report.injected.get("health.probe:flap:*", 0)
        assert flaps == 2
        assert report.transitions.get("mark_down") == flaps
        assert report.transitions.get("mark_up") == flaps

    def test_corrupt_request_yields_typed_service_error(self, registry,
                                                        chaos_seed):
        report = run_scenario("corrupt_request", seed=chaos_seed,
                              registry=registry)
        assert report.errors.get("DjinnServiceError") == 1

    def test_worker_kill_respawns_match_injected(self, registry, chaos_seed):
        """The proc-pool scenario: a worker dies mid-request, yet the
        client sees every request succeed, and the supervisor's respawn
        count equals the injected kill count exactly (nothing killed twice,
        nothing respawned unprovoked)."""
        report = run_scenario("worker_kill", seed=chaos_seed, registry=registry)
        assert report.ok == report.requests
        assert report.injected == {"proc.dispatch:kill:*": 1}
        assert report.worker_respawns == 1

    def test_stream_drop_aborts_match_injected_and_metric(self, registry,
                                                          chaos_seed):
        """The streaming scenario: dropped chunks abort exactly their
        streams, the client-observed aborts equal both the injected drop
        count and the fleet's djinn_stream_aborted_total, the surviving
        streams finish with exact transcripts, and no session leaks."""
        report = run_scenario("stream_drop", seed=chaos_seed,
                              registry=registry)
        assert report.check() == [], report.to_json()
        drops = report.injected.get("stream.chunk:drop:*", 0)
        assert drops == 2
        assert report.stream_aborted == drops
        assert report.stream_aborted_metric == drops
        assert report.stream_ok == report.streams - drops
        assert report.stream_mismatched == 0
        assert report.sessions_leaked == 0
        # unary traffic rode the same run untouched
        assert report.ok == report.requests

    def test_stream_drop_same_seed_same_report(self, registry, chaos_seed):
        first = run_scenario("stream_drop", seed=chaos_seed, registry=registry)
        second = run_scenario("stream_drop", seed=chaos_seed,
                              registry=registry)
        assert first.to_json() == second.to_json()

    def test_stream_abort_metric_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, traces=4,
                             injected={"stream.chunk:drop:*": 2},
                             streams=6, chunks=3, stream_ok=4,
                             stream_aborted=2, stream_aborted_metric=1)
        assert any("djinn_stream_aborted_total" in v for v in report.check())

    def test_leaked_sessions_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, traces=4,
                             streams=2, chunks=3, stream_ok=2,
                             sessions_leaked=1)
        assert any("leak" in v for v in report.check())

    def test_lost_streams_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, traces=4,
                             streams=3, chunks=3, stream_ok=2)
        assert any("stream" in v for v in report.check())

    def test_deadline_storm_sheds_and_expiries_are_typed(self, registry,
                                                         chaos_seed):
        """The QoS scenario: every 4th request is dead on arrival, two
        admitted requests are force-shed, and every rejection is typed —
        nothing lost, and the client-observed shed/expired counts match
        the fleet's counters exactly."""
        report = run_scenario("deadline_storm", seed=chaos_seed,
                              registry=registry)
        assert report.check() == [], report.to_json()
        assert report.expired == report.requests // 4
        assert report.shed == 2
        assert report.injected == {"sched.admit:reject:*": 2}
        assert report.ok == report.requests - report.expired - report.shed
        assert report.expired_metric == report.expired
        assert report.shed_metric == report.shed
        # span coverage of the QoS decisions: every trace still closes a
        # client.infer root (check() enforces traces == requests), and each
        # shed/expired request additionally closed its decision span
        assert report.traces == report.requests
        assert report.admit_spans == report.shed
        assert report.expire_spans == report.expired

    def test_app_preprocess_poison_is_typed_per_request(self, registry,
                                                        chaos_seed):
        """The raw-payload scenario: poisoned payloads 2 and 5 each cost
        exactly one typed service error; every other app request gets the
        content-checked application answer, nothing is lost, and the tensor
        (unary) load sharing the fleet is untouched."""
        report = run_scenario("app_preprocess_poison", seed=chaos_seed,
                              registry=registry)
        _emit_report(report)
        assert report.check() == [], report.to_json()
        assert report.injected == {"app.preprocess:error:dig": 2}
        assert report.app_errors == {"DjinnServiceError": 2}
        assert report.app_ok == report.app_requests - 2
        assert report.app_lost == 0 and report.app_mismatched == 0
        assert report.ok == report.requests  # unary load untouched
        assert report.app_traces == report.app_requests

    def test_app_lost_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=1, ok=1,
                             retry_budget=3, traces=1,
                             app_requests=3, app_ok=2, app_traces=3)
        assert any("app request(s) lost" in v for v in report.check())

    def test_app_poison_without_typed_error_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=1, ok=1,
                             retry_budget=3, traces=1,
                             app_requests=2, app_ok=2, app_traces=2,
                             injected={"app.preprocess:error:dig": 1})
        assert any("poison" in v for v in report.check())

    def test_admit_span_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=3,
                             retry_budget=3, traces=4,
                             errors={"DjinnOverloadedError": 1},
                             shed=1, shed_metric=1, admit_spans=0)
        assert any("sched.admit" in v for v in report.check())

    def test_expire_span_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=3,
                             retry_budget=3, traces=4,
                             errors={"DjinnDeadlineError": 1},
                             expired=1, expired_metric=1, expire_spans=2)
        assert any("sched.expire" in v for v in report.check())

    def test_hedge_span_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, traces=4,
                             hedges_metric=1, hedge_spans=0)
        assert any("gateway.hedge" in v for v in report.check())

    def test_shed_metric_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=3,
                             retry_budget=3, traces=4,
                             errors={"DjinnOverloadedError": 1},
                             shed=1, shed_metric=0)
        assert any("OVERLOADED" in v for v in report.check())

    def test_expired_metric_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=3,
                             retry_budget=3, traces=4,
                             errors={"DjinnDeadlineError": 1},
                             expired=1, expired_metric=2)
        assert any("DEADLINE_EXCEEDED" in v for v in report.check())

    def test_respawn_count_divergence_flagged(self):
        report = ChaosReport(scenario="s", seed=0, requests=4, ok=4,
                             retry_budget=3, traces=4,
                             injected={"proc.dispatch:kill:*": 2},
                             worker_respawns=1)
        assert any("respawn" in v for v in report.check())

    def test_same_seed_same_report(self, registry, chaos_seed):
        """The determinism gate in miniature: rerunning a plan with the
        same seed reproduces the invariant report byte for byte."""
        for name in ("conn_reset", "mixed"):
            first = run_scenario(name, seed=chaos_seed, registry=registry)
            second = run_scenario(name, seed=chaos_seed, registry=registry)
            assert first.to_json() == second.to_json()

    def test_different_seed_changes_mixed_schedule(self, registry):
        """Probability-triggered plans draw from the plan seed: different
        seeds give different fault schedules (counts may coincide; the
        full reports should not)."""
        a = run_scenario("mixed", seed=1, registry=registry)
        b = run_scenario("mixed", seed=2, registry=registry)
        assert a.check() == [] and b.check() == []
        assert a.to_dict()["injected"] != b.to_dict()["injected"]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(KeyError, match="unknown chaos scenario"):
            run_scenario("nope")


# ------------------------------------------------- client half-state fix
class TestClientTransportRecovery:
    """Satellite regression tests for ``DjinnClient._roundtrip``: after a
    transport error the socket must be torn down so the next call dials
    fresh — against a bare DjinnServer, no gateway in between."""

    def _input(self, registry, index):
        net = registry.get("pos")
        x = np.full((1,) + net.input_shape, 0.25, dtype=np.float32)
        x.reshape(-1)[0] = float(index)
        return net, x

    def test_reconnects_after_mid_frame_reset(self, registry):
        plan = FaultPlan(rules=(FaultRule("protocol.send", "truncate",
                                          scope="INFER_RESPONSE", nth=(1,),
                                          bytes_kept=12),))
        with DjinnServer(registry) as server:
            host, port = server.address
            with plan.armed():
                with DjinnClient(host, port, timeout_s=5.0) as client:
                    net, x1 = self._input(registry, 1)
                    with pytest.raises(DjinnConnectionError):
                        client.infer("pos", x1)
                    assert client._sock is None  # torn down, not half-open
                    _, x2 = self._input(registry, 2)
                    out = client.infer("pos", x2)  # reconnected transparently
                    np.testing.assert_allclose(out, net.forward(x2), rtol=1e-5)

    def test_no_stale_response_after_timeout(self, registry):
        """Without the teardown, the late response to request 1 would be
        read back as the answer to request 2."""
        plan = FaultPlan(rules=(FaultRule("protocol.send", "stall",
                                          scope="INFER_RESPONSE", nth=(1,),
                                          delay_s=0.3),))
        with DjinnServer(registry) as server:
            host, port = server.address
            with plan.armed():
                with DjinnClient(host, port, timeout_s=0.1) as client:
                    net, x1 = self._input(registry, 1)
                    with pytest.raises(DjinnConnectionError):
                        client.infer("pos", x1)
                    _, x2 = self._input(registry, 2)
                    out = client.infer("pos", x2)
                    expected = net.forward(x2)
                    stale = net.forward(x1)
                    np.testing.assert_allclose(out, expected, rtol=1e-5)
                    assert not np.allclose(out, stale, rtol=1e-5)

    def test_protocol_desync_is_retryable_and_resets(self, registry):
        """A corrupted response frame (ProtocolError) must also tear the
        connection down and surface as a retryable connection error."""
        plan = FaultPlan(rules=(FaultRule("protocol.send", "corrupt",
                                          scope="INFER_RESPONSE", nth=(1,)),))
        with DjinnServer(registry) as server:
            host, port = server.address
            with plan.armed():
                with DjinnClient(host, port, timeout_s=5.0) as client:
                    net, x1 = self._input(registry, 1)
                    with pytest.raises(DjinnConnectionError, match="desync"):
                        client.infer("pos", x1)
                    assert client._sock is None
                    _, x2 = self._input(registry, 2)
                    np.testing.assert_allclose(client.infer("pos", x2),
                                               net.forward(x2), rtol=1e-5)

    def test_hooks_are_noops_when_disarmed(self, registry):
        """With no plan armed, the instrumented stack behaves stock."""
        assert faultsite.active is None
        with DjinnServer(registry) as server:
            host, port = server.address
            with DjinnClient(host, port) as client:
                net, x = self._input(registry, 1)
                np.testing.assert_allclose(client.infer("pos", x),
                                           net.forward(x), rtol=1e-5)
