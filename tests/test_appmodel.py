"""AppModel conformance: Table 3 and the Figure 4/5/7/10 headline bands.

These are the reproduction's calibration contract: the bands are generous
(the model is first-order), but the orderings and knees are the paper's.
"""

import pytest

from repro.gpusim import all_app_models, app_model
from repro.models import APPLICATIONS

NLP = ("pos", "chk", "ner")


class TestTable3:
    @pytest.mark.parametrize("app,inputs,batch", [
        ("imc", 1, 16), ("dig", 100, 16), ("face", 1, 2), ("asr", 548, 2),
        ("pos", 28, 64), ("chk", 28, 64), ("ner", 28, 64),
    ])
    def test_inputs_and_batch_match_paper(self, app, inputs, batch):
        model = app_model(app)
        assert model.inputs_per_query == inputs
        assert model.best_batch == batch

    @pytest.mark.parametrize("app,paper_kb,tolerance", [
        ("imc", 604, 0.05), ("dig", 307, 0.05), ("face", 271, 0.05),
        ("pos", 38, 0.20), ("chk", 75, 0.20), ("ner", 43, 0.30),
    ])
    def test_wire_sizes_match_table3(self, app, paper_kb, tolerance):
        model = app_model(app)
        measured_kb = model.request_bytes_per_query / 1024
        # compare against the request the app actually ships (input side +
        # chained requests); outputs are excluded as in the paper's column
        if app in ("pos", "ner"):
            measured_kb = model.input_bytes_per_query / 1024
        if app == "chk":
            measured_kb = (model.input_bytes_per_query
                           + app_model("pos").wire_bytes_per_query) / 1024
        assert abs(measured_kb - paper_kb) / paper_kb < tolerance + 0.15, (app, measured_kb)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            app_model("translation")

    def test_all_models_cover_the_suite(self):
        assert tuple(m.app for m in all_app_models()) == APPLICATIONS


class TestFig4CycleBreakdown:
    def test_image_tasks_are_nearly_all_dnn(self):
        for app in ("imc", "dig", "face"):
            assert app_model(app).dnn_cycle_fraction() > 0.95

    def test_asr_dnn_is_about_half(self):
        frac = app_model("asr").dnn_cycle_fraction()
        assert 0.4 < frac < 0.6  # "almost half of the execution cycles"

    def test_nlp_dnn_is_about_two_thirds(self):
        for app in NLP:
            frac = app_model(app).dnn_cycle_fraction()
            assert 0.6 < frac < 0.75  # "more than two thirds"


class TestFig5BaselineSpeedups:
    def test_asr_near_120x(self):
        assert 90 < app_model("asr").gpu_speedup(1) < 150

    def test_nlp_near_7x(self):
        for app in NLP:
            assert 4 < app_model(app).gpu_speedup(1) < 10, app

    def test_large_networks_above_20x(self):
        # paper: "networks with more than 30M parameters achieve above 20x"
        for app in ("imc", "asr"):
            assert app_model(app).gpu_speedup(1) > 20

    def test_speedup_ordering_matches_paper(self):
        speedups = {app: app_model(app).gpu_speedup(1) for app in APPLICATIONS}
        assert speedups["asr"] == max(speedups.values())
        # every NLP task sits below every non-NLP task at batch 1 (Fig 5)
        worst_non_nlp = min(v for a, v in speedups.items() if a not in NLP)
        for app in NLP:
            assert speedups[app] < worst_non_nlp


class TestFig7Batching:
    def test_nlp_batching_gain_near_15x(self):
        for app in NLP:
            model = app_model(app)
            gain = model.gpu_speedup(model.best_batch) / model.gpu_speedup(1)
            assert 10 < gain < 22, (app, gain)

    def test_imc_batching_gain_near_5x(self):
        model = app_model("imc")
        gain = model.gpu_speedup(16) / model.gpu_speedup(1)
        assert 3 < gain < 7, gain

    def test_asr_batching_gain_is_small(self):
        model = app_model("asr")
        gain = model.gpu_speedup(2) / model.gpu_speedup(1)
        assert gain < 1.5  # already ~fully occupied at batch 1

    def test_throughput_rises_then_plateaus(self):
        model = app_model("pos")
        qps = [model.gpu_qps(b) for b in (1, 4, 16, 64, 128, 256)]
        assert all(b >= a for a, b in zip(qps, qps[1:]))
        early_gain = qps[2] / qps[0]
        late_gain = qps[5] / qps[3]
        assert early_gain > 5 and late_gain < 1.7

    def test_latency_rises_with_batch(self):
        model = app_model("imc")
        lat = [model.gpu_query_time(b) for b in (1, 4, 16, 64)]
        assert all(b > a for a, b in zip(lat, lat[1:]))

    def test_occupancy_rises_with_batch_for_nlp(self):
        model = app_model("pos")
        occ1 = model.gpu_profile(1).weighted_occupancy
        occ64 = model.gpu_profile(64).weighted_occupancy
        assert occ1 < 0.20      # paper Fig 7b: under 20% at batch 1
        assert occ64 > 0.80     # paper Fig 7b: above 80% at batch 64


class TestFig6Profile:
    def test_counters(self):
        from repro.gpusim import profile_app

        profiles = {app: profile_app(app_model(app)) for app in APPLICATIONS}
        assert profiles["asr"].occupancy > 0.90      # "above 90% occupancy"
        for app in NLP:
            assert profiles[app].occupancy < 0.20    # "under 20% occupancy"
        # IPC tracks occupancy: ASR tops both, NLP bottoms both
        assert profiles["asr"].ipc_ratio == max(p.ipc_ratio for p in profiles.values())
        # memory bandwidth utilization low relative to peak for DNN GEMMs
        for app in ("imc", "dig", "asr", "pos", "chk", "ner"):
            assert profiles[app].l2_utilization < 0.35, app
            assert profiles[app].l1_shared_utilization < 0.35, app
