"""Shared-memory process-pool serving: correctness, faults, and lifecycle.

The battery proves the three claims :mod:`repro.core.procpool` makes:

* **byte identity** — for every model in the golden zoo, a forward served
  through the proc pool is bit-equal to the in-process forward on the same
  input, and still matches the checked-in golden digests
  (``tests/golden/model_outputs.json``), so process hand-off adds exactly
  zero numeric drift;
* **isolation + recovery** — weights map read-only in workers (numpy
  ``ValueError`` on write, enforced by the MMU), a worker killed mid-batch
  is reaped and its in-flight slot requeued with nothing lost, and
  worker-side injected faults surface in the parent as the same typed
  exceptions the threaded executor raises;
* **lifecycle hygiene** — segments are unlinked exactly once by their
  creator, double-close is a no-op everywhere, and repeated pool
  start/stop cycles leave ``/dev/shm`` exactly as they found it.

The longer mixed-load run lives in ``tests/test_soak.py``
(``@pytest.mark.slow``); the ``worker_kill`` chaos scenario rides the
catalog parametrization in ``tests/test_chaos.py``.
"""

import json
import multiprocessing
import os
from pathlib import Path

import numpy as np
import pytest

from repro.core import (
    BatchPolicy,
    DjinnClient,
    DjinnServer,
    ModelRegistry,
    PoolLease,
    ProcPoolError,
    ProcPoolExecutor,
    parse_workers,
)
from repro.core import shm as shmseg
from repro.core.procpool import KILL_EXIT_CODE, _derive_worker_plan
from repro.faults import FaultPlan, FaultRule, InjectedFault
from repro.models import build_spec
from repro.obs import merge_dumps

GOLDEN_PATH = Path(__file__).parent / "golden" / "model_outputs.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())

#: same seeds the golden digests were generated from
SEED = 0
INPUT_SEED = 0xD1A77


def _shm_names():
    """Segment files currently present in /dev/shm (POSIX shm backing)."""
    root = Path("/dev/shm")
    if not root.is_dir():  # pragma: no cover - non-POSIX-shm platform
        return set()
    return {p.name for p in root.iterdir() if p.name.startswith("psm_")}


def _golden_input(net):
    rng = np.random.default_rng(INPUT_SEED)
    return rng.normal(size=(1,) + net.input_shape).astype(np.float32)


@pytest.fixture(scope="module")
def zoo_registry():
    """Every model the golden digests pin, weight seed 0 (the digest seed)."""
    registry = ModelRegistry()
    for app in sorted(GOLDEN):
        registry.register_spec(app, build_spec(app), seed=SEED)
    yield registry
    registry.close_shm()


@pytest.fixture(scope="module")
def pool(zoo_registry):
    executor = ProcPoolExecutor(zoo_registry, workers=2, max_batch=4)
    yield executor
    executor.close()


# ------------------------------------------------------------ parse_workers
class TestParseWorkers:
    def test_absent_means_disabled(self):
        assert parse_workers(None) == 0
        assert parse_workers("") == 0
        assert parse_workers(0) == 0

    def test_proc_prefix_and_bare_int(self):
        assert parse_workers("proc:4") == 4
        assert parse_workers("3") == 3
        assert parse_workers(2) == 2

    def test_garbage_rejected(self):
        with pytest.raises(ValueError, match="workers spec"):
            parse_workers("proc:lots")
        with pytest.raises(ValueError, match=">= 0"):
            parse_workers(-1)

    def test_pool_rejects_bad_construction(self, zoo_registry):
        with pytest.raises(ValueError, match="workers"):
            ProcPoolExecutor(zoo_registry, workers=0)
        with pytest.raises(ValueError, match="empty registry"):
            ProcPoolExecutor(ModelRegistry(), workers=1)


# ------------------------------------------------------------ byte identity
@pytest.mark.parametrize("app", sorted(GOLDEN))
class TestByteIdentity:
    """Cross-executor equivalence over the whole zoo: the pool's output is
    bit-equal to the in-process forward, not merely close."""

    def test_pool_matches_in_process_bitwise(self, app, zoo_registry, pool):
        net = zoo_registry.get(app)
        x = _golden_input(net)
        expected = net.forward(x)
        out = pool.submit(app, x)
        assert out.dtype == expected.dtype
        assert out.shape == expected.shape
        assert out.tobytes() == expected.tobytes()

    def test_pool_matches_golden_digest(self, app, zoo_registry, pool):
        """The checked-in digests pin the threaded path; the pool must land
        on the same numbers, so the digests now pin both executors."""
        golden = GOLDEN[app]
        net = zoo_registry.get(app)
        out = pool.submit(app, _golden_input(net))
        flat = out.reshape(-1)
        assert list(out.shape) == golden["output_shape"]
        assert int(flat.argmax()) == golden["argmax"]
        assert float(flat.sum()) == pytest.approx(golden["sum"], rel=1e-4)
        np.testing.assert_allclose(flat[: len(golden["sample"])],
                                   golden["sample"], rtol=1e-4, atol=1e-6)

    def test_multirow_batch_bitwise(self, app, zoo_registry, pool):
        net = zoo_registry.get(app)
        rng = np.random.default_rng(INPUT_SEED + 1)
        x = rng.normal(size=(3,) + net.input_shape).astype(np.float32)
        assert pool.submit(app, x).tobytes() == net.forward(x).tobytes()


class TestSubmitSurface:
    def test_unknown_model_is_keyerror(self, pool):
        with pytest.raises(KeyError, match="not in pool"):
            pool.submit("nope", np.zeros((1, 4), np.float32))

    def test_wrong_sample_shape_rejected(self, pool):
        with pytest.raises(ValueError, match="sample shape"):
            pool.submit("pos", np.zeros((1, 7), np.float32))

    def test_over_envelope_rejected(self, zoo_registry, pool):
        net = zoo_registry.get("pos")
        x = np.zeros((pool.max_batch + 1,) + net.input_shape, np.float32)
        with pytest.raises(ValueError, match="envelope"):
            pool.submit("pos", x)

    def test_parts_gather_into_one_slot(self, zoo_registry, pool):
        """submit_parts serves a batching front-end: several payloads, one
        dispatch, outputs in part order."""
        net = zoo_registry.get("pos")
        rng = np.random.default_rng(INPUT_SEED + 2)
        parts = [rng.normal(size=(n,) + net.input_shape).astype(np.float32)
                 for n in (1, 2, 1)]
        with pool.submit_parts("pos", parts) as lease:
            expected = net.forward(np.concatenate(parts, axis=0))
            assert lease.outputs.tobytes() == expected.tobytes()

    def test_lease_views_are_read_only_and_expire(self, zoo_registry, pool):
        net = zoo_registry.get("pos")
        x = np.full((1,) + net.input_shape, 0.5, np.float32)
        lease = pool.submit_lease("pos", x)
        assert isinstance(lease, PoolLease)
        out = lease.outputs
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[...] = 0.0
        lease.release()
        lease.release()  # idempotent
        with pytest.raises(RuntimeError, match="released"):
            _ = lease.outputs


# ----------------------------------------------------- read-only weights
def _attempt_weight_write(manifest, q):
    """Forked child: attach the shared weights and try to scribble on one."""
    registry = ModelRegistry.attach_shm(manifest)
    blob = shmseg.net_blobs(registry.get("pos"))[0]
    try:
        blob.data[...] = 0.0
        q.put("wrote")
    except ValueError:
        q.put("ValueError")


class TestReadOnlyWeights:
    def test_worker_process_cannot_write_weights(self, zoo_registry, pool):
        """A real forked attacher gets ValueError from numpy — the worker
        half of the paper's load-once / share-read-only contract."""
        ctx = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods()
            else "spawn")
        if ctx.get_start_method() != "fork":  # pragma: no cover
            pytest.skip("manifest hand-off in this test relies on fork")
        q = ctx.Queue()
        proc = ctx.Process(target=_attempt_weight_write,
                           args=(pool.manifest, q))
        proc.start()
        verdict = q.get(timeout=30)
        proc.join(timeout=30)
        assert verdict == "ValueError"

    def test_parent_blobs_rebind_read_only_after_export(self, zoo_registry,
                                                        pool):
        """export_shm points the parent at the same read-only views, so no
        process — parent included — holds a writable copy."""
        for app in zoo_registry.names():
            for blob in shmseg.net_blobs(zoo_registry.get(app)):
                assert not blob.require_data().flags.writeable

    def test_weight_digest_stable_across_export(self):
        registry = ModelRegistry()
        net = registry.register_spec("pos", build_spec("pos"), seed=SEED)
        before = shmseg.weight_digest(net)
        registry.export_shm()
        try:
            assert shmseg.weight_digest(net) == before
        finally:
            registry.close_shm()


# -------------------------------------------------------- crash recovery
class TestCrashRecovery:
    def test_killed_worker_is_reaped_and_request_survives(self, zoo_registry):
        """proc.dispatch:kill murders the worker that picks up request 1;
        the supervisor requeues the slot and a respawn serves it — the
        caller never notices."""
        plan = FaultPlan(rules=(FaultRule("proc.dispatch", "kill", nth=(1,)),),
                         seed=0, name="kill-one")
        pool = ProcPoolExecutor(zoo_registry, workers=1, max_batch=4)
        try:
            net = zoo_registry.get("pos")
            x = np.full((1,) + net.input_shape, 0.25, np.float32)
            # the dispatch site lives in the parent: arm the plan here
            with plan.armed() as injector:
                out = pool.submit("pos", x)
                assert injector.fires() == {"proc.dispatch:kill:*": 1}
            assert out.tobytes() == net.forward(x).tobytes()
            assert pool.respawn_count() == 1
        finally:
            pool.close()

    def test_queued_requests_survive_a_mid_batch_death(self, zoo_registry):
        """Several requests in flight when the (only) worker dies: the
        killed slot is requeued, the queue drains on the respawn, and every
        response carries the right payload."""
        import threading

        plan = FaultPlan(rules=(FaultRule("proc.dispatch", "kill", nth=(1,)),),
                         seed=0, name="kill-under-load")
        pool = ProcPoolExecutor(zoo_registry, workers=1, max_batch=4, slots=8)
        try:
            net = zoo_registry.get("pos")
            results: dict = {}

            def one(i):
                x = np.full((1,) + net.input_shape, 0.1, np.float32)
                x.reshape(-1)[0] = float(i + 1)
                results[i] = (pool.submit("pos", x), net.forward(x))

            threads = [threading.Thread(target=one, args=(i,))
                       for i in range(5)]
            with plan.armed():
                for t in threads:
                    t.start()
                for t in threads:
                    t.join(timeout=90)
            assert len(results) == 5
            for out, expected in results.values():
                assert out.tobytes() == expected.tobytes()
            assert pool.respawn_count() == 1
        finally:
            pool.close()

    def test_worker_side_fault_surfaces_typed(self, zoo_registry):
        """batch.execute crash inside the worker comes back as
        InjectedFault (a ConnectionError) — the same contract the threaded
        executor honours — and the worker survives to serve the retry."""
        plan = FaultPlan(rules=(FaultRule("batch.execute", "crash", nth=(1,)),),
                         seed=0, name="worker-crash")
        pool = ProcPoolExecutor(zoo_registry, workers=1, max_batch=4,
                                fault_plan=plan)
        try:
            net = zoo_registry.get("pos")
            x = np.full((1,) + net.input_shape, 0.25, np.float32)
            with pytest.raises(InjectedFault):
                pool.submit("pos", x)
            assert pool.respawn_count() == 0  # an exception, not a death
            out = pool.submit("pos", x)
            assert out.tobytes() == net.forward(x).tobytes()
        finally:
            pool.close()

    def test_derived_worker_plans_differ_per_worker(self):
        base = FaultPlan(rules=(FaultRule("batch.execute", "crash",
                                          probability=0.5),),
                         seed=7, name="base")
        w0 = _derive_worker_plan(base.to_dict(), 0)
        w1 = _derive_worker_plan(base.to_dict(), 1)
        assert w0.rules == base.rules == w1.rules
        assert w0.seed != w1.seed != base.seed
        assert w0.name == "base/worker0" and w1.name == "base/worker1"

    def test_kill_exit_code_is_distinctive(self):
        """The chaos kill must be tellable apart from a real crash (1) and
        a clean exit (0) in worker post-mortems."""
        assert KILL_EXIT_CODE not in (0, 1)


# ----------------------------------------------------------- shm lifecycle
class TestShmLifecycle:
    def test_repeated_start_stop_leaves_dev_shm_clean(self):
        before = _shm_names()
        for _ in range(3):
            registry = ModelRegistry()
            registry.register_spec("pos", build_spec("pos"), seed=SEED)
            pool = ProcPoolExecutor(registry, workers=1, max_batch=2)
            net = registry.get("pos")
            x = np.zeros((1,) + net.input_shape, np.float32)
            assert pool.submit("pos", x).shape == (1,) + net.output_shape
            pool.close()
            registry.close_shm()
        assert _shm_names() == before

    def test_pool_close_is_idempotent(self):
        registry = ModelRegistry()
        registry.register_spec("pos", build_spec("pos"), seed=SEED)
        pool = ProcPoolExecutor(registry, workers=1, max_batch=2)
        pool.close()
        pool.close()  # second close must be a no-op, not a crash
        registry.close_shm()
        registry.close_shm()

    def test_submit_after_close_is_typed(self):
        registry = ModelRegistry()
        registry.register_spec("pos", build_spec("pos"), seed=SEED)
        pool = ProcPoolExecutor(registry, workers=1, max_batch=2)
        pool.close()
        try:
            with pytest.raises(ProcPoolError, match="closed"):
                pool.submit("pos", np.zeros((1,) + registry.get("pos").input_shape,
                                            np.float32))
        finally:
            registry.close_shm()

    def test_export_is_idempotent_one_copy_per_host(self, zoo_registry, pool):
        """A second export (e.g. a second pool over the same registry) must
        reuse the existing segments — never a second weight copy."""
        first = zoo_registry.shm_manifest()
        second = zoo_registry.export_shm()
        assert first == second
        segments = [entry["segment"] for entry in second["models"].values()]
        assert len(segments) == len(set(segments)) == len(GOLDEN)

    def test_double_close_and_double_unlink_tolerated(self):
        from multiprocessing import shared_memory

        segment = shared_memory.SharedMemory(create=True, size=64)
        attached = shmseg.attach_segment(segment.name)
        shmseg.close_segment(attached)
        shmseg.close_segment(attached)          # double close: no-op
        shmseg.unlink_segment(segment)
        shmseg.unlink_segment(segment)          # double unlink: no-op

    def test_segment_names_cover_weights_and_ring(self, zoo_registry, pool):
        names = pool.segment_names()
        assert len(names) == len(GOLDEN) + 1     # one per model + the ring
        live = _shm_names()
        for name in names:
            assert name.lstrip("/") in live

    def test_shm_bytes_accounts_every_parameter(self, zoo_registry, pool):
        """The resident shm footprint is the parameter bytes plus only
        per-blob alignment slack — weights live in shm exactly once."""
        param_bytes = zoo_registry.total_param_bytes()
        blob_count = sum(len(shmseg.net_blobs(zoo_registry.get(app)))
                         for app in zoo_registry.names())
        assert param_bytes <= pool.shm_bytes() <= param_bytes + 64 * blob_count


# ---------------------------------------------------------------- metrics
class TestWorkerMetrics:
    def test_worker_dumps_merge_into_fleet_view(self, zoo_registry, pool):
        net = zoo_registry.get("pos")
        x = np.zeros((1,) + net.input_shape, np.float32)
        for _ in range(3):
            pool.submit("pos", x)
        dumps = pool.worker_metric_dumps()
        assert dumps, "no worker published a metrics dump"
        merged = merge_dumps([pool.metrics.dump()] + dumps)
        names = set(merged["metrics"])
        assert {"djinn_proc_dispatch_total", "djinn_proc_requests_total",
                "djinn_proc_forward_seconds", "djinn_proc_workers"} <= names
        served = sum(s["value"]
                     for s in merged["metrics"]["djinn_proc_requests_total"]["samples"])
        dispatched = sum(s["value"]
                         for s in merged["metrics"]["djinn_proc_dispatch_total"]["samples"])
        assert served >= 3
        # every dispatch that did not die mid-flight was served in a worker
        assert served <= dispatched
        workers_seen = {s["labels"]["worker"]
                        for s in merged["metrics"]["djinn_proc_requests_total"]["samples"]}
        assert workers_seen <= {"0", "1"}


# ------------------------------------------------------- server integration
class TestServerIntegration:
    def test_server_pool_serves_bit_equal(self, zoo_registry):
        with DjinnServer(zoo_registry, workers="proc:2") as server:
            host, port = server.address
            with DjinnClient(host, port) as client:
                net = zoo_registry.get("dig")
                x = _golden_input(net)
                out = client.infer("dig", x)
                assert out.tobytes() == net.forward(x).tobytes()

    def test_oversize_request_falls_back_in_parent(self, zoo_registry):
        """A request wider than the pool envelope is served in-parent
        rather than rejected — the pool is an accelerator, not a cap."""
        with DjinnServer(zoo_registry, workers="proc:2") as server:
            host, port = server.address
            with DjinnClient(host, port) as client:
                net = zoo_registry.get("pos")
                rows = server.DEFAULT_POOL_BATCH + 3
                x = np.full((rows,) + net.input_shape, 0.1, np.float32)
                out = client.infer("pos", x)
                assert out.tobytes() == net.forward(x).tobytes()

    def test_batching_front_end_rides_the_pool(self, zoo_registry):
        with DjinnServer(zoo_registry, workers="proc:2",
                         batching=BatchPolicy(max_batch=4,
                                              timeout_ms=1.0)) as server:
            host, port = server.address
            with DjinnClient(host, port) as client:
                net = zoo_registry.get("pos")
                for i in range(5):
                    x = np.full((1,) + net.input_shape, 0.1 * (i + 1),
                                np.float32)
                    out = client.infer("pos", x)
                    assert out.tobytes() == net.forward(x).tobytes()

    def test_metrics_endpoint_includes_worker_counters(self, zoo_registry):
        """METRICS over TCP returns the parent dump merged with every
        worker's seqlock'd dump — per-process serving counters included."""
        with DjinnServer(zoo_registry, workers="proc:2") as server:
            host, port = server.address
            with DjinnClient(host, port) as client:
                net = zoo_registry.get("pos")
                client.infer("pos", np.zeros((1,) + net.input_shape,
                                             np.float32))
                dump = client.metrics()
                names = set(dump["metrics"])
                assert "djinn_proc_dispatch_total" in names
                assert "djinn_proc_requests_total" in names
                assert "djinn_proc_workers" in names
