"""Unit tests for kernel lowering and the occupancy calculator."""

import pytest

from repro.gpusim import K40, Kernel, lower, occupancy, tile_utilization
from repro.models import build_net
from repro.nn import analyze


def kernels_for(app, batch=1):
    return lower(analyze(build_net(app), batch=batch), K40)


class TestTileUtilization:
    def test_full_tiles(self):
        assert tile_utilization(64, 64, K40) == 1.0

    def test_partial_tiles_penalized(self):
        # M=6 uses 6/32 of the tile rows
        assert tile_utilization(6, 64, K40) == pytest.approx(6 / 32)

    def test_never_exceeds_one(self):
        for m, n in [(1, 1), (33, 33), (500, 28)]:
            assert 0.0 < tile_utilization(m, n, K40) <= 1.0


class TestOccupancy:
    def test_small_kernel_low_occupancy(self):
        kernel = Kernel("k", "gemm", 1e6, 0, 0, blocks=8, tile_util=1.0, reduction=64)
        assert occupancy(kernel, K40) == pytest.approx(8 * 256 / 30720)

    def test_large_kernel_hits_cap(self):
        kernel = Kernel("k", "gemm", 1e9, 0, 0, blocks=10_000, tile_util=1.0, reduction=64)
        assert occupancy(kernel, K40) == K40.occupancy_cap

    def test_kernel_validation(self):
        with pytest.raises(ValueError):
            Kernel("k", "gemm", 1.0, 0, 0, blocks=0, tile_util=1.0)
        with pytest.raises(ValueError):
            Kernel("k", "gemm", 1.0, 0, 0, blocks=1, tile_util=0.0)


class TestLowering:
    def test_dropout_and_flatten_lower_to_nothing(self):
        names = {k.name for k in kernels_for("imc")}
        assert "drop6" not in names and "drop7" not in names

    def test_alexnet_grouped_convs_fold_launches(self):
        kernels = {k.name: k for k in kernels_for("imc")}
        assert kernels["conv2"].launches == 2
        assert kernels["conv3"].launches == 1

    def test_deepface_lc_layers_fuse_positions_into_one_launch(self):
        kernels = {k.name: k for k in kernels_for("face")}
        l4 = kernels["l4"]
        assert l4.kind == "lc_gemm"
        assert l4.launches == 1
        assert l4.blocks > 1000  # one tile grid per output position

    def test_elementwise_kernels_carry_activation_bytes(self):
        kernels = {k.name: k for k in kernels_for("asr")}
        sig = kernels["sigmoid1"]
        assert sig.kind == "elementwise"
        assert sig.activation_bytes == 2 * 2048 * 4
        assert sig.param_bytes == 0

    def test_gemm_reduction_dimension_recorded(self):
        kernels = {k.name: k for k in kernels_for("asr")}
        assert kernels["affine1"].reduction == 440
        assert kernels["affine2"].reduction == 2048

    def test_kernel_count_matches_netcost(self):
        cost = analyze(build_net("pos"), batch=1)
        kernels = lower(cost, K40)
        # pos: l1, hardtanh, l3, softmax = 4 kernels
        assert len(kernels) == 4

    def test_batch_scales_blocks_for_fc_nets(self):
        one = {k.name: k for k in kernels_for("pos", batch=28)}
        big = {k.name: k for k in kernels_for("pos", batch=28 * 64)}
        assert big["l1"].blocks > one["l1"].blocks
