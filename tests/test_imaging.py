"""Unit tests for the image preprocessing substrate."""

import numpy as np
import pytest

from repro.tonic.imaging import bilinear_resize, center_crop, fit_to, per_channel_standardize


class TestBilinearResize:
    def test_identity_when_same_size(self, rng):
        image = rng.random((3, 8, 8)).astype(np.float32)
        out = bilinear_resize(image, 8, 8)
        np.testing.assert_array_equal(out, image)
        assert out is not image  # a copy, callers may mutate

    def test_constant_image_stays_constant(self):
        image = np.full((3, 10, 7), 0.3, dtype=np.float32)
        out = bilinear_resize(image, 23, 31)
        np.testing.assert_allclose(out, 0.3, rtol=1e-6)

    def test_upscale_preserves_gradient(self):
        """A linear ramp resampled bilinearly stays (nearly) linear."""
        ramp = np.tile(np.linspace(0, 1, 16, dtype=np.float32), (1, 16, 1))
        out = bilinear_resize(ramp, 16, 64)
        diffs = np.diff(out[0, 0, 4:-4])
        assert np.all(diffs >= -1e-6)
        assert diffs.max() < 3.0 / 64

    def test_downscale_averages(self):
        checker = np.indices((8, 8)).sum(axis=0) % 2
        image = checker[None].astype(np.float32)
        out = bilinear_resize(image, 4, 4)
        assert abs(float(out.mean()) - 0.5) < 0.1

    def test_range_preserved(self, rng):
        image = rng.random((3, 9, 13)).astype(np.float32)
        out = bilinear_resize(image, 30, 5)
        assert out.min() >= image.min() - 1e-6
        assert out.max() <= image.max() + 1e-6

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            bilinear_resize(rng.random((8, 8)), 4, 4)
        with pytest.raises(ValueError):
            bilinear_resize(rng.random((1, 8, 8)), 0, 4)


class TestCenterCrop:
    def test_extracts_central_window(self):
        image = np.arange(36, dtype=np.float32).reshape(1, 6, 6)
        out = center_crop(image, 2, 2)
        np.testing.assert_array_equal(out[0], [[14, 15], [20, 21]])

    def test_full_size_is_identity(self, rng):
        image = rng.random((3, 5, 5)).astype(np.float32)
        np.testing.assert_array_equal(center_crop(image, 5, 5), image)

    def test_rejects_oversized_crop(self, rng):
        with pytest.raises(ValueError, match="exceeds"):
            center_crop(rng.random((3, 4, 4)), 5, 5)


class TestFitTo:
    @pytest.mark.parametrize("h,w", [(300, 400), (227, 227), (150, 600), (500, 230)])
    def test_always_produces_target_geometry(self, rng, h, w):
        image = rng.random((3, h, w)).astype(np.float32)
        out = fit_to(image, 227, 227)
        assert out.shape == (3, 227, 227)

    def test_feeds_imc_app_with_arbitrary_photos(self, rng):
        from repro.models import build_net
        from repro.tonic import ImcApp, LocalBackend

        app = ImcApp(LocalBackend(build_net("imc", materialize=True)))
        photo = rng.random((3, 320, 480)).astype(np.float32)
        result = app.run(photo)
        assert result.label.startswith("class_")

    def test_face_app_resizes_too(self, rng):
        from repro.nn import LayerSpec, Net, NetSpec
        from repro.tonic import FaceApp, LocalBackend

        spec = NetSpec("t", (3, 152, 152), (
            LayerSpec("Pooling", "p", {"kernel_size": 8, "stride": 8}),
            LayerSpec("InnerProduct", "fc", {"num_output": 83}),
            LayerSpec("Softmax", "s"),
        ))
        app = FaceApp(LocalBackend(Net(spec).materialize(0)))
        assert app.run(rng.random((3, 200, 180)).astype(np.float32)).index >= 0


class TestStandardize:
    def test_zero_mean_unit_variance_per_channel(self, rng):
        image = rng.normal(3.0, 2.0, size=(3, 16, 16))
        out = per_channel_standardize(image)
        np.testing.assert_allclose(out.mean(axis=(1, 2)), 0.0, atol=1e-5)
        np.testing.assert_allclose(out.std(axis=(1, 2)), 1.0, rtol=1e-4)

    def test_constant_channel_does_not_blow_up(self):
        out = per_channel_standardize(np.full((1, 4, 4), 2.0))
        assert np.all(np.isfinite(out))
