"""Unit tests for the locally-connected layer (DeepFace's L4-L6)."""

import numpy as np
import pytest

from repro.nn import check_layer_gradients
from repro.nn.layers import ConvolutionLayer, LocallyConnectedLayer


def naive_local(x, weight, stride, pad):
    """Direct unshared convolution, trusted reference."""
    n, c, h, w = x.shape
    positions, cout, fan_in = weight.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    k = int(round((fan_in // c) ** 0.5))
    out_h = (x.shape[2] - k) // stride + 1
    out_w = (x.shape[3] - k) // stride + 1
    y = np.zeros((n, cout, out_h, out_w))
    for b in range(n):
        for i in range(out_h):
            for j in range(out_w):
                pos = i * out_w + j
                patch = x[b, :, i * stride : i * stride + k, j * stride : j * stride + k].ravel()
                y[b, :, i, j] = weight[pos] @ patch
    return y


class TestForward:
    @pytest.mark.parametrize("stride,pad", [(1, 0), (2, 1)])
    def test_matches_naive_reference(self, rng, stride, pad):
        layer = LocallyConnectedLayer("lc", num_output=3, kernel_size=3,
                                      stride=stride, pad=pad, bias=False)
        layer.setup((2, 7, 7))
        layer.materialize(rng)
        x = rng.normal(size=(2, 2, 7, 7)).astype(np.float32)
        y = layer.forward(x)
        expected = naive_local(x, layer.weight.data, stride, pad)
        np.testing.assert_allclose(y, expected, rtol=1e-4, atol=1e-5)

    def test_differs_from_shared_conv_with_different_position_weights(self, rng):
        """Sanity: unshared weights really vary by position."""
        lc = LocallyConnectedLayer("lc", num_output=2, kernel_size=3, bias=False)
        lc.setup((1, 5, 5))
        lc.materialize(rng)
        x = np.zeros((1, 1, 5, 5), dtype=np.float32)
        x[0, 0, 1, 1] = 1.0  # activates several windows with distinct weights
        y = lc.forward(x)
        flat = y.reshape(2, -1)
        assert np.unique(np.round(flat, 6)).size > 2

    def test_equals_conv_when_weights_replicated(self, rng):
        """With every position given identical weights, LC == convolution."""
        conv = ConvolutionLayer("c", num_output=3, kernel_size=3, bias=False)
        conv.setup((2, 6, 6))
        conv.materialize(rng)
        lc = LocallyConnectedLayer("l", num_output=3, kernel_size=3, bias=False)
        lc.setup((2, 6, 6))
        lc.materialize(rng)
        shared = conv.weight.data.reshape(3, -1)
        lc.weight.data = np.broadcast_to(shared, lc.weight.shape).copy()
        x = rng.normal(size=(2, 2, 6, 6)).astype(np.float32)
        np.testing.assert_allclose(lc.forward(x), conv.forward(x), rtol=1e-4, atol=1e-5)


class TestBackward:
    def test_gradients_match_numerical(self, rng):
        layer = LocallyConnectedLayer("lc", num_output=2, kernel_size=3, stride=2)
        layer.setup((1, 7, 7))
        layer.materialize(rng)
        errors = check_layer_gradients(layer, rng.normal(size=(2, 1, 7, 7)))
        assert all(err < 1e-3 for err in errors.values()), errors


class TestCost:
    def test_param_count_scales_with_positions(self):
        layer = LocallyConnectedLayer("lc", num_output=16, kernel_size=9, bias=False)
        layer.setup((16, 63, 63))
        assert layer.param_count() == 55 * 55 * 16 * (16 * 81)

    def test_gemm_shapes_are_one_small_gemm_per_position(self):
        layer = LocallyConnectedLayer("lc", num_output=4, kernel_size=3)
        layer.setup((2, 5, 5))
        shapes = layer.gemm_shapes(batch=2)
        assert len(shapes) == 9
        assert shapes[0] == (4, 2, 18)

    def test_flops_match_conv_of_same_geometry(self):
        """Same math as a conv; only the weights are unshared."""
        lc = LocallyConnectedLayer("lc", num_output=4, kernel_size=3, bias=False)
        lc.setup((2, 6, 6))
        conv = ConvolutionLayer("c", num_output=4, kernel_size=3, bias=False)
        conv.setup((2, 6, 6))
        assert lc.flops_per_sample() == conv.flops_per_sample()
