"""Unit tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.tonic.datasets import (
    digit_dataset,
    face_images,
    imagenet_like_images,
    render_digit,
    sentence_queries,
    speech_queries,
)


class TestDigitRenderer:
    def test_image_properties(self, rng):
        image = render_digit(3, rng)
        assert image.shape == (28, 28)
        assert image.dtype == np.float32
        assert 0.0 <= image.min() and image.max() <= 1.0

    def test_rejects_non_digits(self, rng):
        with pytest.raises(ValueError):
            render_digit(10, rng)

    def test_digits_are_visually_distinct(self, rng):
        """Average renderings of different digits differ substantially."""
        means = {}
        for digit in range(10):
            means[digit] = np.mean(
                [render_digit(digit, rng, noise=0.0) for _ in range(8)], axis=0
            )
        for a in range(10):
            for b in range(a + 1, 10):
                diff = float(np.abs(means[a] - means[b]).mean())
                assert diff > 0.01, (a, b)

    def test_same_digit_varies_between_renders(self, rng):
        a = render_digit(5, rng)
        b = render_digit(5, rng)
        assert not np.array_equal(a, b)  # jitter + noise

    def test_dataset_shapes_and_balance(self):
        images, labels = digit_dataset(500, seed=0)
        assert images.shape == (500, 1, 28, 28)
        assert labels.shape == (500,)
        counts = np.bincount(labels, minlength=10)
        assert counts.min() > 20  # roughly balanced

    def test_dataset_reproducible(self):
        a = digit_dataset(10, seed=3)
        b = digit_dataset(10, seed=3)
        np.testing.assert_array_equal(a[0], b[0])
        np.testing.assert_array_equal(a[1], b[1])


class TestImagenetLike:
    def test_table3_wire_size(self):
        images, _ = imagenet_like_images(2, seed=0)
        assert images.shape == (2, 3, 227, 227)
        assert images[0].nbytes == pytest.approx(604 * 1024, rel=0.01)

    def test_class_parameterizes_texture(self):
        a, _ = imagenet_like_images(1, num_classes=2, seed=0)
        # same label => same base texture across seeds (modulo noise)
        images, labels = imagenet_like_images(6, num_classes=2, seed=1)
        same = [i for i in range(6) if labels[i] == labels[0]]
        diff = [i for i in range(6) if labels[i] != labels[0]]
        if same[1:] and diff:
            corr_same = np.corrcoef(images[same[0]].ravel(), images[same[1]].ravel())[0, 1]
            corr_diff = np.corrcoef(images[same[0]].ravel(), images[diff[0]].ravel())[0, 1]
            assert corr_same > corr_diff

    def test_pixel_range(self):
        images, _ = imagenet_like_images(2, seed=5)
        assert images.min() >= 0.0 and images.max() <= 1.0


class TestFaces:
    def test_table3_wire_size(self):
        faces, _ = face_images(1, seed=0)
        assert faces.shape == (1, 3, 152, 152)
        assert faces[0].nbytes == pytest.approx(271 * 1024, rel=0.01)

    def test_labels_bounded_by_identities(self):
        _, labels = face_images(20, num_identities=5, seed=1)
        assert labels.max() < 5

    def test_faces_have_structure(self):
        """A face image is not pure noise: the head region is brighter than
        the corners."""
        faces, _ = face_images(3, seed=2)
        center = faces[:, :, 60:90, 60:90].mean()
        corners = faces[:, :, :20, :20].mean()
        assert center > corners + 0.1


class TestSpeechQueries:
    def test_transcripts_are_lexicon_words(self):
        from repro.tonic.speechsynth import LEXICON

        for audio, words in speech_queries(5, words_per_query=2, seed=0):
            assert len(words) == 2
            assert all(w in LEXICON for w in words)
            assert audio.ndim == 1 and len(audio) > 1000

    def test_reproducible(self):
        a = speech_queries(3, seed=4)
        b = speech_queries(3, seed=4)
        for (audio_a, words_a), (audio_b, words_b) in zip(a, b):
            np.testing.assert_array_equal(audio_a, audio_b)
            assert words_a == words_b


class TestSentenceQueries:
    def test_returns_tagged_sentences(self):
        sentences = sentence_queries(5, seed=0)
        assert len(sentences) == 5
        assert all(len(s.pos) == len(s.words) for s in sentences)
