"""Unit tests for the speech synthesizer and the tagged-text generator."""

import numpy as np
import pytest

from repro.models.senna import CHUNK_TAGS, NER_TAGS, POS_TAGS
from repro.tonic.speechsynth import (
    LEXICON,
    PHONES,
    phone_formants,
    synthesize_phone,
    synthesize_words,
)
from repro.tonic.textgen import LEXICON as TEXT_LEXICON
from repro.tonic.textgen import generate_corpus, generate_sentence


class TestSpeechSynth:
    def test_every_lexicon_phone_is_known(self):
        for word, pron in LEXICON.items():
            for phone in pron:
                assert phone in PHONES, (word, phone)

    def test_phone_formants_unknown_raises(self):
        with pytest.raises(ValueError, match="known"):
            phone_formants("zh")

    def test_phone_duration(self, rng):
        seg = synthesize_phone("aa", 0.05, rng)
        assert len(seg) == int(0.05 * 16000)

    def test_silence_is_quiet(self, rng):
        sil = synthesize_phone("sil", 0.1, rng)
        voiced = synthesize_phone("aa", 0.1, rng)
        assert float(np.abs(sil).mean()) < 0.1 * float(np.abs(voiced).mean())

    def test_vowels_have_distinct_spectra(self, rng):
        from repro.tonic.dsp import fbank_features

        aa = fbank_features(synthesize_phone("aa", 0.3, rng))
        iy = fbank_features(synthesize_phone("iy", 0.3, rng))
        assert aa.mean(axis=0).argmax() != iy.mean(axis=0).argmax()

    def test_alignment_covers_whole_signal(self):
        audio, alignment = synthesize_words(["go", "stop"], seed=1)
        assert alignment[0][1] == 0
        assert alignment[-1][2] == len(audio)
        for (_, _, end), (_, start, _) in zip(alignment, alignment[1:]):
            assert end == start  # contiguous, non-overlapping

    def test_alignment_contains_expected_phones(self):
        _, alignment = synthesize_words(["go"], seed=0)
        phones = [p for p, _, _ in alignment if p != "sil"]
        assert phones == ["g", "ow"]

    def test_unknown_word_raises(self):
        with pytest.raises(ValueError, match="lexicon"):
            synthesize_words(["hello"])

    def test_deterministic_per_seed(self):
        a, _ = synthesize_words(["yes"], seed=5)
        b, _ = synthesize_words(["yes"], seed=5)
        np.testing.assert_array_equal(a, b)
        c, _ = synthesize_words(["yes"], seed=6)
        assert len(a) != len(c) or not np.array_equal(a, c)


class TestTextGen:
    def test_corpus_is_reproducible(self):
        a = generate_corpus(10, seed=3)
        b = generate_corpus(10, seed=3)
        assert [s.words for s in a] == [s.words for s in b]

    def test_annotations_align(self, rng):
        for sentence in generate_corpus(50, seed=1):
            n = len(sentence.words)
            assert len(sentence.pos) == len(sentence.chunks) == len(sentence.entities) == n

    def test_pos_tags_are_valid_and_match_lexicon(self):
        for sentence in generate_corpus(50, seed=2):
            for word, tag in zip(sentence.words, sentence.pos):
                assert tag in POS_TAGS
                assert TEXT_LEXICON[word] == tag

    def test_chunk_tags_form_valid_iob(self):
        for sentence in generate_corpus(50, seed=4):
            prev = "O"
            for tag in sentence.chunks:
                assert tag in CHUNK_TAGS
                if tag.startswith("I-"):
                    assert prev in (f"B-{tag[2:]}", f"I-{tag[2:]}"), sentence.chunks
                prev = tag

    def test_ner_tags_form_valid_iob(self):
        for sentence in generate_corpus(50, seed=5):
            prev = "O"
            for tag in sentence.entities:
                assert tag in NER_TAGS
                if tag.startswith("I-"):
                    assert prev in (f"B-{tag[2:]}", f"I-{tag[2:]}")
                prev = tag

    def test_entities_are_proper_nouns(self):
        for sentence in generate_corpus(50, seed=6):
            for tag, pos in zip(sentence.entities, sentence.pos):
                if tag != "O":
                    assert pos == "NNP"

    def test_sentences_start_with_np(self):
        for sentence in generate_corpus(20, seed=7):
            assert sentence.chunks[0] == "B-NP"

    def test_rejects_negative_count(self):
        with pytest.raises(ValueError):
            generate_corpus(-1)

    def test_sentence_lengths_vary(self):
        lengths = {len(s) for s in generate_corpus(50, seed=8)}
        assert len(lengths) > 3
