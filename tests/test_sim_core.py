"""Unit tests for the discrete-event simulation kernel."""

import pytest

from repro.sim import Acquire, Environment, Release, Resource, SimError, Timeout


class TestTimeAdvance:
    def test_timeouts_fire_in_order(self):
        env = Environment()
        trace = []

        def proc(name, delay):
            yield Timeout(delay)
            trace.append((name, env.now))

        env.process(proc("b", 2.0))
        env.process(proc("a", 1.0))
        env.run()
        assert trace == [("a", 1.0), ("b", 2.0)]

    def test_simultaneous_events_run_in_schedule_order(self):
        env = Environment()
        trace = []

        def proc(name):
            yield Timeout(1.0)
            trace.append(name)

        for name in "abc":
            env.process(proc(name))
        env.run()
        assert trace == ["a", "b", "c"]

    def test_run_until_stops_the_clock(self):
        env = Environment()

        def proc():
            yield Timeout(10.0)

        env.process(proc())
        assert env.run(until=3.0) == 3.0
        assert env.now == 3.0

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError):
            Timeout(-1.0)

    def test_return_value_captured(self):
        env = Environment()

        def proc():
            yield Timeout(1.0)
            return 42

        p = env.process(proc())
        env.run()
        assert p.finished and p.value == 42


class TestProcessWaiting:
    def test_process_waits_for_another(self):
        env = Environment()
        trace = []

        def child():
            yield Timeout(5.0)
            trace.append(("child", env.now))

        def parent():
            c = env.process(child())
            yield c
            trace.append(("parent", env.now))

        env.process(parent())
        env.run()
        assert trace == [("child", 5.0), ("parent", 5.0)]

    def test_waiting_on_finished_process_resumes_immediately(self):
        env = Environment()
        done = []

        def quick():
            return 1
            yield  # pragma: no cover

        def waiter(target):
            yield Timeout(3.0)
            yield target
            done.append(env.now)

        target = env.process(quick())
        env.process(waiter(target))
        env.run()
        assert done == [3.0]

    def test_unknown_yield_raises(self):
        env = Environment()

        def proc():
            yield "nonsense"

        env.process(proc())
        with pytest.raises(SimError, match="unknown command"):
            env.run()


class TestResources:
    def test_capacity_enforced_fifo(self):
        env = Environment()
        res = Resource(env, capacity=1)
        trace = []

        def proc(name):
            yield Acquire(res)
            trace.append((name, "in", env.now))
            yield Timeout(2.0)
            yield Release(res)

        for name in "abc":
            env.process(proc(name))
        env.run()
        assert trace == [("a", "in", 0.0), ("b", "in", 2.0), ("c", "in", 4.0)]

    def test_multi_capacity(self):
        env = Environment()
        res = Resource(env, capacity=2)
        entered = []

        def proc():
            yield Acquire(res)
            entered.append(env.now)
            yield Timeout(1.0)
            yield Release(res)

        for _ in range(4):
            env.process(proc())
        env.run()
        assert entered == [0.0, 0.0, 1.0, 1.0]

    def test_release_idle_resource_raises(self):
        env = Environment()
        res = Resource(env)

        def proc():
            yield Release(res)

        env.process(proc())
        with pytest.raises(SimError, match="idle resource"):
            env.run()

    def test_utilization_accounting(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def proc():
            yield Acquire(res)
            yield Timeout(3.0)
            yield Release(res)
            yield Timeout(1.0)  # idle tail

        env.process(proc())
        env.run()
        assert res.utilization() == pytest.approx(0.75)

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            Resource(Environment(), capacity=0)
