"""Integration tests: the trainable Tonic pipelines really learn.

These reproduce the paper's accuracy context end-to-end on the synthetic
datasets: DIG's digit recognizer trains past the paper's "over 98%" bar,
the SENNA taggers beat the "over 89%" bar, and the compact acoustic model
decodes synthesized utterances back to the right words through the full
filterbank -> DNN -> Viterbi -> lexicon pipeline.
"""

import numpy as np
import pytest

from repro.models import lenet5, senna
from repro.nn import LayerSpec, Net, NetSpec, SgdSolver, accuracy
from repro.tonic import (
    AsrApp,
    DigApp,
    LocalBackend,
    PHONES,
    Vocabulary,
    WindowFeaturizer,
    digit_dataset,
    generate_corpus,
    speech_queries,
    synthesize_words,
)
from repro.tonic.asr import STATES_PER_PHONE, acoustic_training_set
from repro.tonic.nlp import PosApp, tagging_training_set
from repro.tonic.speechsynth import LEXICON


@pytest.mark.slow
class TestDigitTraining:
    def test_lenet_learns_digits_past_98_percent(self):
        x, y = digit_dataset(600, seed=0)
        xt, yt = digit_dataset(200, seed=99)
        net = Net(lenet5(include_softmax=False)).materialize(0)

        def prep(images):
            return (np.pad(images, ((0, 0), (0, 0), (2, 2), (2, 2))) - 0.5) * 2

        solver = SgdSolver(net, lr=0.05, momentum=0.9)
        solver.fit(prep(x), y, epochs=3, batch=32)
        assert accuracy(net, prep(xt), yt) > 0.98  # paper §3.2.1: "over 98%"

    def test_trained_weights_serve_through_dig_app(self):
        x, y = digit_dataset(400, seed=1)
        train_net = Net(lenet5(include_softmax=False)).materialize(0)

        def prep(images):
            return (np.pad(images, ((0, 0), (0, 0), (2, 2), (2, 2))) - 0.5) * 2

        SgdSolver(train_net, lr=0.05, momentum=0.9).fit(prep(x), y, epochs=3, batch=32)
        serve_net = Net(lenet5())
        serve_net.copy_weights_from(train_net)
        app = DigApp(LocalBackend(serve_net))
        xt, yt = digit_dataset(100, seed=42)
        preds = app.run(xt)
        assert float(np.mean(np.asarray(preds) == yt)) > 0.95


@pytest.mark.slow
class TestTaggerTraining:
    @pytest.mark.parametrize("task", ["pos", "chk", "ner"])
    def test_senna_tagger_beats_89_percent(self, task):
        corpus = generate_corpus(250, seed=0)
        test = generate_corpus(80, seed=50)
        vocab = Vocabulary(w for s in corpus for w in s.words)
        featurizer = WindowFeaturizer(vocab)
        net = Net(senna(task, include_softmax=False)).materialize(0)
        x, y = tagging_training_set(task, corpus, featurizer)
        xt, yt = tagging_training_set(task, test, featurizer)
        SgdSolver(net, lr=0.05, momentum=0.9).fit(x, y, epochs=4, batch=32)
        assert accuracy(net, xt, yt) > 0.89  # paper §3.2.3: "over 89%"

    def test_trained_pos_app_viterbi_beats_argmax_ties(self):
        corpus = generate_corpus(250, seed=0)
        test = generate_corpus(60, seed=77)
        vocab = Vocabulary(w for s in corpus for w in s.words)
        featurizer = WindowFeaturizer(vocab)
        net = Net(senna("pos", include_softmax=False)).materialize(0)
        x, y = tagging_training_set("pos", corpus, featurizer)
        SgdSolver(net, lr=0.05, momentum=0.9).fit(x, y, epochs=4, batch=32)

        serve = Net(senna("pos"))
        serve.copy_weights_from(net)
        from repro.tonic import TagTransitions
        from repro.tonic.nlp import TASK_TAGS
        transitions = TagTransitions(TASK_TAGS["pos"]).fit([s.pos for s in corpus])
        app = PosApp(LocalBackend(serve), featurizer, transitions)
        correct = total = 0
        for sentence in test:
            tags = app.run(sentence)
            correct += sum(t == g for t, g in zip(tags, sentence.pos))
            total += len(sentence)
        assert correct / total > 0.9


@pytest.mark.slow
class TestAsrPipeline:
    @pytest.fixture(scope="class")
    def trained_app(self):
        rng = np.random.default_rng(5)
        words = sorted(LEXICON)
        utts = [synthesize_words([w], seed=i) for i, w in enumerate(words * 4)]
        # two-word utterances teach the word-boundary coarticulation
        pairs = [[words[rng.integers(len(words))], words[rng.integers(len(words))]]
                 for _ in range(48)]
        utts += [synthesize_words(p, seed=1000 + i) for i, p in enumerate(pairs)]
        feats, labels = acoustic_training_set(utts)
        num_senones = len(PHONES) * STATES_PER_PHONE
        train_spec = NetSpec("am", (440,), (
            LayerSpec("InnerProduct", "h1", {"num_output": 192}),
            LayerSpec("Sigmoid", "s1"),
            LayerSpec("InnerProduct", "out", {"num_output": num_senones}),
        ))
        am = Net(train_spec).materialize(0)
        SgdSolver(am, lr=0.2, momentum=0.9).fit(feats, labels, epochs=10, batch=64)
        counts = np.bincount(labels, minlength=num_senones) + 1.0
        serve_spec = NetSpec("am_s", (440,), tuple(train_spec.layers) + (
            LayerSpec("Softmax", "p"),))
        serve = Net(serve_spec)
        serve.copy_weights_from(am)
        return AsrApp(LocalBackend(serve), log_priors=np.log(counts / counts.sum()))

    def test_decodes_unseen_utterances(self, trained_app):
        queries = speech_queries(10, words_per_query=2, seed=7)
        exact = sum(list(trained_app.run(audio).words) == words for audio, words in queries)
        assert exact >= 8  # full pipeline: audio -> features -> DNN -> Viterbi -> words

    def test_word_error_rate_is_low(self, trained_app):
        """WER over a small eval set, computed with true edit distance."""
        from repro.tonic.metrics import edit_distance

        errors = words = 0
        for audio, ref in speech_queries(12, words_per_query=3, seed=21):
            hyp = list(trained_app.run(audio).words)
            errors += edit_distance(hyp, ref)
            words += len(ref)
        assert errors / words < 0.25
