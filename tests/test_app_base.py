"""Tests for the TonicApp base plumbing (timings, backend protocol)."""

import numpy as np
import pytest

from repro.tonic.app import DnnBackend, StageTiming, TonicApp


class _Doubler(TonicApp):
    """A trivial app: preprocess scales, postprocess sums."""

    def preprocess(self, raw):
        return np.asarray(raw, dtype=np.float32) * 2.0

    def postprocess(self, outputs, raw):
        return float(outputs.sum())


class _EchoBackend(DnnBackend):
    def __init__(self):
        self.calls = []

    def infer(self, model, inputs):
        self.calls.append((model, inputs.shape))
        return inputs + 1.0


class TestStageTiming:
    def test_total_and_fraction(self):
        t = StageTiming(pre_s=1.0, dnn_s=2.0, post_s=1.0)
        assert t.total_s == 4.0
        assert t.dnn_fraction == 0.5

    def test_zero_total_fraction(self):
        assert StageTiming().dnn_fraction == 0.0

    def test_addition_accumulates_stages(self):
        total = StageTiming(1, 2, 3) + StageTiming(4, 5, 6)
        assert (total.pre_s, total.dnn_s, total.post_s) == (5, 7, 9)


class TestTonicAppPlumbing:
    def test_run_equals_run_timed_result(self):
        app = _Doubler("echo", _EchoBackend())
        x = np.ones((2, 3))
        result, timing = app.run_timed(x)
        assert app.run(x) == result
        assert result == float((x * 2 + 1).sum())
        assert timing.pre_s >= 0 and timing.dnn_s >= 0 and timing.post_s >= 0

    def test_backend_receives_app_name_as_model(self):
        backend = _EchoBackend()
        app = _Doubler("echo", backend)
        app.run(np.ones((1, 2)))
        assert backend.calls == [("echo", (1, 2))]

    def test_base_class_is_abstract(self):
        app = TonicApp("x", _EchoBackend())
        with pytest.raises(NotImplementedError):
            app.run(np.ones(2))

    def test_dnn_backend_protocol_is_abstract(self):
        with pytest.raises(NotImplementedError):
            DnnBackend().infer("m", np.ones(1))
