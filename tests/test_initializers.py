"""Unit tests for repro.nn.initializers."""

import math

import numpy as np
import pytest

from repro.nn.initializers import constant, gaussian, get_filler, uniform, xavier


class TestFillers:
    def test_constant(self, rng):
        out = constant(3.5)((4, 4), rng)
        assert out.dtype == np.float32
        assert np.all(out == 3.5)

    def test_gaussian_statistics(self, rng):
        out = gaussian(std=0.1)((200, 200), rng)
        assert abs(float(out.mean())) < 0.01
        assert abs(float(out.std()) - 0.1) < 0.01

    def test_uniform_bounds(self, rng):
        out = uniform(-0.2, 0.2)((1000,), rng)
        assert out.min() >= -0.2 and out.max() <= 0.2

    def test_xavier_scale_tracks_fan_in(self, rng):
        out = xavier()((64, 100), rng)
        bound = math.sqrt(3.0 / 100)
        assert out.min() >= -bound and out.max() <= bound
        # a wider fan-in gives a tighter bound
        out2 = xavier()((64, 10000), rng)
        assert float(np.abs(out2).max()) < float(np.abs(out).max())

    def test_xavier_fan_in_for_conv_blobs(self, rng):
        # fan_in = C*k*k for (O, C, k, k) blobs, matching Caffe
        out = xavier()((8, 3, 5, 5), rng)
        bound = math.sqrt(3.0 / 75)
        assert float(np.abs(out).max()) <= bound

    def test_deterministic_under_same_seed(self):
        a = gaussian()((5, 5), np.random.default_rng(9))
        b = gaussian()((5, 5), np.random.default_rng(9))
        np.testing.assert_array_equal(a, b)


class TestGetFiller:
    def test_resolves_names(self, rng):
        assert np.all(get_filler("constant")((2,), rng) == 0.0)

    def test_resolves_name_kwargs_tuple(self, rng):
        filler = get_filler(("gaussian", {"std": 2.0}))
        out = filler((500, 50), rng)
        assert 1.8 < float(out.std()) < 2.2

    def test_passes_through_callables(self, rng):
        marker = lambda shape, r: np.ones(shape)  # noqa: E731
        assert get_filler(marker) is marker

    def test_unknown_name_raises_with_candidates(self):
        with pytest.raises(ValueError, match="known"):
            get_filler("he_normal")

    def test_bad_spec_type(self):
        with pytest.raises(TypeError):
            get_filler(42)
