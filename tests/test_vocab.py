"""Unit tests for vocabulary, embeddings, and window features."""

import numpy as np
import pytest

from repro.models.senna import FEATURE_DIM, WINDOW, WORD_DIM
from repro.tonic.vocab import PAD_TOKEN, UNK_TOKEN, Vocabulary, WindowFeaturizer
from repro.tonic.vocab import _caps_feature


class TestVocabulary:
    def test_case_insensitive_lookup(self):
        vocab = Vocabulary(["Server", "Query"])
        assert vocab.index("server") == vocab.index("SERVER")

    def test_unknown_maps_to_unk(self):
        vocab = Vocabulary(["alpha"])
        assert vocab.index("omega") == vocab.index(UNK_TOKEN)

    def test_dedupes_words(self):
        vocab = Vocabulary(["a", "A", "a", "b"])
        assert len(vocab) == 4  # pad, unk, a, b

    def test_pad_embedding_is_zero(self):
        vocab = Vocabulary(["x"])
        np.testing.assert_array_equal(vocab.embed(PAD_TOKEN), 0.0)

    def test_embeddings_seeded(self):
        a = Vocabulary(["x", "y"], seed=3).embed("x")
        b = Vocabulary(["x", "y"], seed=3).embed("x")
        np.testing.assert_array_equal(a, b)

    def test_embedding_dim(self):
        vocab = Vocabulary(["x"], dim=25)
        assert vocab.embed("x").shape == (25,)


class TestCapsFeature:
    @pytest.mark.parametrize("word,expected", [
        ("lower", 0), ("Title", 1), ("ALLCAPS", 2), ("mIxEd", 3), ("123", 0),
    ])
    def test_categories(self, word, expected):
        assert _caps_feature(word) == expected


class TestWindowFeaturizer:
    @pytest.fixture
    def featurizer(self):
        return WindowFeaturizer(Vocabulary(["the", "fox", "runs"]))

    def test_window_dim_matches_senna_input(self, featurizer):
        assert featurizer.window_dim == WINDOW * (WORD_DIM + FEATURE_DIM)
        # the SENNA network's input shape must match exactly
        from repro.models import senna
        from repro.nn import Net
        assert Net(senna("pos")).input_shape == (featurizer.window_dim,)

    def test_one_row_per_word(self, featurizer):
        rows = featurizer.featurize(["the", "fox", "runs"])
        assert rows.shape == (3, featurizer.window_dim)

    def test_padding_at_sentence_edges(self, featurizer):
        rows = featurizer.featurize(["fox"])
        dim = WORD_DIM + FEATURE_DIM
        # positions 0,1 and 3,4 of the window are pad (zero) vectors
        np.testing.assert_array_equal(rows[0, : 2 * dim], 0.0)
        np.testing.assert_array_equal(rows[0, 3 * dim :], 0.0)
        assert np.any(rows[0, 2 * dim : 3 * dim] != 0.0)

    def test_window_shifts_by_one_word(self, featurizer):
        rows = featurizer.featurize(["the", "fox", "runs"])
        dim = WORD_DIM + FEATURE_DIM
        # word 0's right-neighbor slot equals word 1's center slot
        np.testing.assert_array_equal(
            rows[0, 3 * dim : 4 * dim], rows[1, 2 * dim : 3 * dim]
        )

    def test_custom_feature_ids_change_vectors(self, featurizer):
        base = featurizer.featurize(["fox"], feature_ids=[0])
        alt = featurizer.featurize(["fox"], feature_ids=[7])
        assert not np.array_equal(base, alt)

    def test_feature_ids_must_align(self, featurizer):
        with pytest.raises(ValueError, match="align"):
            featurizer.featurize(["a", "b"], feature_ids=[1])

    def test_empty_sentence_gives_empty_matrix(self, featurizer):
        assert featurizer.featurize([]).shape == (0, featurizer.window_dim)
