#!/usr/bin/env python3
"""End-to-end speech recognition through the DjiNN service.

The full Tonic ASR pipeline of paper §3.2.2, on synthesized speech:

  audio -> filterbank frontend -> spliced features ->
  DjiNN acoustic DNN (per-frame senone posteriors) ->
  HMM Viterbi decode -> lexicon word search -> text

A compact acoustic model (the trainable stand-in for the 30M-parameter
Kaldi network; see DESIGN.md) is trained on the synthesizer's alignments,
served over TCP, and evaluated by word error rate.

Run:  python examples/asr_pipeline.py
"""

import numpy as np

from repro.core import DjinnClient, DjinnServer, ModelRegistry, RemoteBackend
from repro.nn import LayerSpec, Net, NetSpec, SgdSolver
from repro.tonic import PHONES, speech_queries, synthesize_words
from repro.tonic.asr import STATES_PER_PHONE, AsrApp, acoustic_training_set
from repro.tonic.metrics import word_error_rate
from repro.tonic.speechsynth import LEXICON

NUM_SENONES = len(PHONES) * STATES_PER_PHONE


def train_acoustic_model():
    """Train a compact DNN on (spliced fbank, tied-state) pairs."""
    rng = np.random.default_rng(5)
    words = sorted(LEXICON)
    utterances = [synthesize_words([w], seed=i) for i, w in enumerate(words * 4)]
    # two-word utterances teach the word-boundary coarticulation
    pairs = [[words[rng.integers(len(words))], words[rng.integers(len(words))]]
             for _ in range(48)]
    utterances += [synthesize_words(p, seed=1000 + i) for i, p in enumerate(pairs)]
    features, labels = acoustic_training_set(utterances)
    print(f"training on {len(features):,d} aligned frames, {NUM_SENONES} senones")

    spec = NetSpec("acoustic", (440,), (
        LayerSpec("InnerProduct", "h1", {"num_output": 192}),
        LayerSpec("Sigmoid", "s1"),
        LayerSpec("InnerProduct", "senone", {"num_output": NUM_SENONES}),
    ))
    net = Net(spec).materialize(0)
    solver = SgdSolver(net, lr=0.2, momentum=0.9)
    log = solver.fit(features, labels, epochs=10, batch=64,
                     eval_set=(features, labels))
    print(f"frame accuracy after training: {log.epoch_accuracy[-1]:.3f}")

    counts = np.bincount(labels, minlength=NUM_SENONES) + 1.0
    log_priors = np.log(counts / counts.sum())

    serving_spec = NetSpec("asr", (440,), tuple(spec.layers) + (
        LayerSpec("Softmax", "posterior"),))
    serving = Net(serving_spec)
    serving.copy_weights_from(net)
    return serving, log_priors


def main() -> None:
    serving, log_priors = train_acoustic_model()

    registry = ModelRegistry()
    registry.register("asr", serving)

    with DjinnServer(registry) as server:
        host, port = server.address
        with DjinnClient(host, port) as client:
            app = AsrApp(RemoteBackend(client), log_priors=log_priors)

            print("\ndecoding 15 unseen utterances through the service:")
            hypotheses, references = [], []
            exact = 0
            for audio, reference in speech_queries(15, words_per_query=3, seed=99):
                transcript, timing = app.run_timed(audio)
                hypotheses.append(list(transcript.words))
                references.append(reference)
                exact += hypotheses[-1] == reference
                print(f"  ref: {' '.join(reference):24s} hyp: {transcript.text:24s} "
                      f"({timing.dnn_fraction:.0%} of time in DNN)")
            wer = word_error_rate(hypotheses, references)
            print(f"\nword error rate: {wer:.1%}   exact sentence matches: {exact}/15")
            assert wer < 0.3


if __name__ == "__main__":
    main()
