#!/usr/bin/env python3
"""The three NLP services — POS, CHK, NER — trained and served together.

Demonstrates the paper's §3.2.3 structure end to end: all three SENNA
window networks live in one DjiNN registry; CHK first issues a POS request
for its sentence and feeds the predicted tags into its own features before
making its own DNN request (so one CHK query = two service round trips).

Run:  python examples/nlp_pipeline.py
"""

from repro.core import DjinnClient, DjinnServer, ModelRegistry, RemoteBackend
from repro.models import senna
from repro.nn import Net, SgdSolver, accuracy
from repro.tonic import TagTransitions, Vocabulary, WindowFeaturizer, generate_corpus
from repro.tonic.nlp import ChkApp, NerApp, PosApp, TASK_TAGS, tagging_training_set


def train_taggers(corpus, featurizer):
    """Train all three window networks; return serving nets + transitions."""
    nets, transitions = {}, {}
    gold = {"pos": lambda s: s.pos, "chk": lambda s: s.chunks, "ner": lambda s: s.entities}
    for task in ("pos", "chk", "ner"):
        net = Net(senna(task, include_softmax=False)).materialize(0)
        x, y = tagging_training_set(task, corpus, featurizer)
        SgdSolver(net, lr=0.05, momentum=0.9).fit(x, y, epochs=5, batch=32)
        print(f"  {task}: trained on {len(x):,d} windows, "
              f"train accuracy {accuracy(net, x, y):.3f}")
        serving = Net(senna(task))
        serving.copy_weights_from(net)
        nets[task] = serving
        transitions[task] = TagTransitions(TASK_TAGS[task]).fit(
            [gold[task](s) for s in corpus]
        )
    return nets, transitions


def main() -> None:
    corpus = generate_corpus(400, seed=0)
    held_out = generate_corpus(50, seed=1000)
    vocab = Vocabulary(w for s in corpus for w in s.words)
    featurizer = WindowFeaturizer(vocab)

    print("training the three SENNA taggers...")
    nets, transitions = train_taggers(corpus, featurizer)

    registry = ModelRegistry()
    for task, net in nets.items():
        registry.register(task, net)

    with DjinnServer(registry) as server:
        host, port = server.address
        with DjinnClient(host, port) as client:
            backend = RemoteBackend(client)
            pos = PosApp(backend, featurizer, transitions["pos"])
            ner = NerApp(backend, featurizer, transitions["ner"])
            chk = ChkApp(backend, featurizer, pos_app=pos, transitions=transitions["chk"])

            sentence = held_out[0]
            print("\nsample sentence:", " ".join(sentence.words))
            print("  POS:", " ".join(pos.run(sentence)))
            print("  CHK:", " ".join(chk.run(sentence)), "(after a chained POS request)")
            print("  NER:", " ".join(ner.run(sentence)))

            scores = {"pos": [0, 0], "chk": [0, 0], "ner": [0, 0]}
            gold = {"pos": lambda s: s.pos, "chk": lambda s: s.chunks,
                    "ner": lambda s: s.entities}
            for s in held_out:
                for task, app in (("pos", pos), ("chk", chk), ("ner", ner)):
                    tags = app.run(s)
                    scores[task][0] += sum(t == g for t, g in zip(tags, gold[task](s)))
                    scores[task][1] += len(s)
            print("\nheld-out tagging accuracy (paper's bar: >89%):")
            for task, (hit, total) in scores.items():
                print(f"  {task}: {hit / total:.3f}")
                assert hit / total > 0.89

            stats = client.stats()
            print(f"\nservice requests: pos={stats['pos']['requests']:.0f} "
                  f"chk={stats['chk']['requests']:.0f} ner={stats['ner']['requests']:.0f}")
            print("(pos count exceeds chk's own queries: CHK chains POS, paper §3.2.3)")


if __name__ == "__main__":
    main()
