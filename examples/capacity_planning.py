#!/usr/bin/env python3
"""Capacity planning with the performance and TCO models.

Answers the operator's questions the paper's §5-§6 machinery exists for:

  1. What does one K40 deliver per application (batching + MPS applied)?
  2. How many GPUs serve a target query load, and where does multi-GPU
     scaling stop paying (the NLP bandwidth wall)?
  3. What does each WSC design cost to serve a given workload mix?

Run:  python examples/capacity_planning.py
"""

from repro.gpusim import GpuServerModel, all_app_models
from repro.gpusim.mps import service_segments, simulate_concurrent
from repro.wsc import MIXED, NLP, WscDesigner

TARGET_QPS = {  # a hypothetical product's steady-state load
    "imc": 50_000, "dig": 20_000, "face": 5_000, "asr": 2_000,
    "pos": 500_000, "chk": 200_000, "ner": 200_000,
}


def main() -> None:
    print("== per-GPU capability (Table 3 batches + 4 MPS instances) ==")
    per_gpu = {}
    for model in all_app_models():
        result = simulate_concurrent(service_segments(model), 4, "mps")
        qps = result.qps * model.best_batch
        per_gpu[model.app] = qps
        print(f"  {model.app:5s} {qps:>12,.0f} QPS/GPU   "
              f"latency {result.mean_latency_s * 1e3:>7.2f} ms   "
              f"{qps * model.wire_bytes_per_query / 1e9:>5.2f} GB/s of PCIe traffic")

    print("\n== GPUs needed for the target load ==")
    total_gpus = 0
    for model in all_app_models():
        app = model.app
        gpus = TARGET_QPS[app] / per_gpu[app]
        srv = GpuServerModel(model)
        eight = srv.scale(8)
        note = "  <- host-link limited at 8 GPUs/server" if eight.link_limited else ""
        print(f"  {app:5s} target {TARGET_QPS[app]:>9,d} QPS -> {gpus:6.2f} GPUs{note}")
        total_gpus += gpus
    print(f"  total: {total_gpus:.1f} GPUs")

    print("\n== WSC design comparison (500-server CPU-only baseline) ==")
    designer = WscDesigner()
    for workload, fraction in ((MIXED, 0.7), (NLP, 0.7)):
        results = designer.all_designs(workload, fraction)
        base = results["cpu_only"].total_tco
        print(f"  {workload.name} at {fraction:.0%} DNN share:")
        for name, result in results.items():
            inv = result.inventory
            print(f"    {name:14s} TCO ${result.total_tco / 1e6:6.2f}M "
                  f"({result.total_tco / base:5.2f}x of CPU-only)  "
                  f"servers={inv.beefy_servers + inv.wimpy_servers:7.1f} gpus={inv.gpus:6.0f}")


if __name__ == "__main__":
    main()
