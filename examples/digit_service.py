#!/usr/bin/env python3
"""Train LeNet-5 on synthetic digits, serve it through DjiNN, and measure
end-to-end accuracy and service throughput.

Reproduces the DIG task's accuracy context (paper §3.2.2: "over 98%
accuracy") on the synthetic digit renderer, then serves the trained model
for real over TCP with server-side dynamic batching.

Run:  python examples/digit_service.py
"""

import time

import numpy as np

from repro.core import BatchPolicy, DjinnClient, DjinnServer, ModelRegistry, RemoteBackend
from repro.models import lenet5
from repro.nn import Net, SgdSolver, accuracy
from repro.tonic import DigApp, digit_dataset


def pad_and_center(images: np.ndarray) -> np.ndarray:
    """28x28 [0,1] digits -> LeNet-5's 32x32 [-1,1] retina."""
    return (np.pad(images, ((0, 0), (0, 0), (2, 2), (2, 2))) - 0.5) * 2.0


def train_lenet(train_size: int = 1500, epochs: int = 4) -> Net:
    images, labels = digit_dataset(train_size, seed=0)
    net = Net(lenet5(include_softmax=False)).materialize(0)
    solver = SgdSolver(net, lr=0.05, momentum=0.9)
    eval_images, eval_labels = digit_dataset(300, seed=1)
    log = solver.fit(
        pad_and_center(images), labels, epochs=epochs, batch=32,
        eval_set=(pad_and_center(eval_images), eval_labels),
        on_epoch=lambda e, l: print(f"  epoch {e}: held-out accuracy {l.epoch_accuracy[-1]:.3f}"),
    )
    return net


def main() -> None:
    print("training LeNet-5 on rendered digits...")
    trained = train_lenet()

    # share the trained weights into a serving net (with softmax)
    serving = Net(lenet5())
    serving.copy_weights_from(trained)

    # persist the trained model; `djinn serve --load <path>=dig` serves it later
    from repro.nn import save_net
    model_path = "/tmp/lenet5_digits.npz"
    save_net(serving, model_path)
    print(f"saved trained model to {model_path}")

    registry = ModelRegistry()
    registry.register("dig", serving)

    with DjinnServer(registry, batching=BatchPolicy(max_batch=256, timeout_ms=2.0)) as server:
        host, port = server.address
        with DjinnClient(host, port) as client:
            app = DigApp(RemoteBackend(client))

            test_images, test_labels = digit_dataset(500, seed=42)
            start = time.monotonic()
            predictions = []
            for offset in range(0, 500, app.IMAGES_PER_QUERY):  # Table 3: 100/query
                predictions.extend(app.run(test_images[offset : offset + 100]))
            elapsed = time.monotonic() - start

            acc = float(np.mean(np.asarray(predictions) == test_labels))
            print(f"\nserved 500 digits in {elapsed * 1e3:.1f} ms "
                  f"({500 / elapsed:,.0f} digits/s over TCP)")
            print(f"accuracy through the service: {acc:.3f} "
                  f"(paper's bar for the MNIST task: >0.98)")
            print("service stats:", client.stats()["dig"])
            assert acc > 0.97


if __name__ == "__main__":
    main()
