#!/usr/bin/env python3
"""Serving a custom, branched architecture through DjiNN.

Paper §3.1: "Supporting more applications simply requires providing DjiNN a
pretrained neural network model."  This example exercises that claim with
an architecture *outside* Tonic Suite: a small inception-style block (three
parallel convolution towers concatenated) built as a
:class:`repro.nn.GraphNet`, trained on the synthetic digit task, and
registered with a running DjiNN service like any other model.

Run:  python examples/custom_architecture.py
"""

import numpy as np

from repro.core import DjinnClient, DjinnServer, ModelRegistry
from repro.nn import INPUT, GraphLayerSpec, GraphNet, GraphSpec
from repro.nn.layers.softmax import softmax_cross_entropy
from repro.tonic import digit_dataset


def L(type_, name, bottoms, **params):
    return GraphLayerSpec(type=type_, name=name, bottoms=tuple(bottoms), params=params)


def inception_digit_net(include_softmax=True) -> GraphSpec:
    """Three conv towers (1x1-ish, 3x3, 5x5) -> concat -> classifier."""
    layers = [
        # tower A: cheap pointwise features
        L("Convolution", "a_conv", [INPUT], num_output=4, kernel_size=1),
        L("ReLU", "a_relu", ["a_conv"]),
        # tower B: 3x3 features
        L("Convolution", "b_conv", [INPUT], num_output=6, kernel_size=3, pad=1),
        L("ReLU", "b_relu", ["b_conv"]),
        # tower C: 5x5 features
        L("Convolution", "c_conv", [INPUT], num_output=4, kernel_size=5, pad=2),
        L("ReLU", "c_relu", ["c_conv"]),
        # merge and classify
        L("Concat", "merge", ["a_relu", "b_relu", "c_relu"]),
        L("Pooling", "pool", ["merge"], kernel_size=2, stride=2),
        L("InnerProduct", "fc", ["pool"], num_output=64),
        L("ReLU", "fc_relu", ["fc"]),
        L("InnerProduct", "logits", ["fc_relu"], num_output=10),
    ]
    output = "logits"
    if include_softmax:
        layers.append(L("Softmax", "prob", ["logits"]))
        output = "prob"
    return GraphSpec(name="inception_digits", input_shape=(1, 28, 28),
                     layers=tuple(layers), output=output)


def train(net: GraphNet, steps: int = 120, lr: float = 0.08) -> None:
    images, labels = digit_dataset(800, seed=0)
    rng = np.random.default_rng(1)
    for step in range(steps):
        idx = rng.integers(0, len(images), size=32)
        logits = net.forward(images[idx], train=True)
        loss, dlogits = softmax_cross_entropy(logits, labels[idx])
        net.zero_grad()
        net.forward(images[idx], train=True)
        net.backward(dlogits)
        for blob in net.params():
            blob.data -= lr * blob.grad
        if step % 40 == 0:
            print(f"  step {step:3d}: loss {loss:.3f}")


def main() -> None:
    print("training a 3-tower inception-style digit net "
          f"({GraphNet(inception_digit_net()).param_count():,d} params)...")
    trainable = GraphNet(inception_digit_net(include_softmax=False)).materialize(0)
    train(trainable)

    serving = GraphNet(inception_digit_net())
    # share trained weights into the softmax-capped serving graph
    for dst, src in zip(serving.params(), trainable.params()):
        dst.data = src.data
        dst.grad = np.zeros_like(src.data)
    serving._materialized = True

    test_images, test_labels = digit_dataset(300, seed=77)
    accuracy = float(np.mean(serving.predict(test_images) == test_labels))
    print(f"held-out accuracy: {accuracy:.3f}")

    registry = ModelRegistry()
    registry.register("inception-digits", serving)
    with DjinnServer(registry) as server:
        host, port = server.address
        with DjinnClient(host, port) as client:
            print("served models:", client.list_models())
            probs = client.infer("inception-digits", test_images[:5])
            print("remote predictions:", [int(p) for p in np.argmax(probs, axis=1)],
                  "labels:", [int(l) for l in test_labels[:5]])
    assert accuracy > 0.9


if __name__ == "__main__":
    main()
