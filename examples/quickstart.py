#!/usr/bin/env python3
"""Quickstart: stand up a DjiNN service and run Tonic queries against it.

This is the paper's Figure 3 in ~60 lines: a DNN service holding models
in memory, and applications that preprocess raw inputs, call the service
over TCP, and postprocess the predictions.

Run:  python examples/quickstart.py
"""

from repro.core import DjinnClient, DjinnServer, ModelRegistry, RemoteBackend
from repro.models import lenet5, senna
from repro.tonic import (
    DigApp,
    PosApp,
    Vocabulary,
    WindowFeaturizer,
    digit_dataset,
    generate_corpus,
)


def main() -> None:
    # 1. Load models into the registry once; workers share them read-only.
    registry = ModelRegistry()
    registry.register_spec("dig", lenet5(), seed=0)
    registry.register_spec("pos", senna("pos"), seed=1)
    print(f"registry holds {len(registry)} models "
          f"({registry.total_param_bytes() / 1024:.0f} KB resident)")

    # 2. Start the DjiNN service on a local TCP port.
    with DjinnServer(registry) as server:
        host, port = server.address
        print(f"DjiNN service listening on {host}:{port}")

        with DjinnClient(host, port) as client:
            backend = RemoteBackend(client)
            print("models served:", client.list_models())

            # 3. Digit recognition: a Table-3-style 100-image query.
            images, labels = digit_dataset(100, seed=7)
            dig = DigApp(backend)
            predictions, timing = dig.run_timed(images)
            agreement = sum(int(p == l) for p, l in zip(predictions, labels))
            print(f"\nDIG: 100 digits in {timing.total_s * 1e3:.1f} ms "
                  f"({timing.dnn_fraction:.0%} in the DNN service); "
                  f"{agreement}/100 match labels "
                  "(untrained weights -- see digit_service.py for a trained model)")

            # 4. POS tagging: preprocessing happens app-side, as in the paper.
            sentence = generate_corpus(1, seed=3)[0]
            vocab = Vocabulary(sentence.words)
            pos = PosApp(backend, WindowFeaturizer(vocab))
            tags = pos.run(sentence)
            print("\nPOS:", " ".join(f"{w}/{t}" for w, t in zip(sentence.words, tags)))

            # 5. The service kept score.
            print("\nservice stats:", client.stats())


if __name__ == "__main__":
    main()
